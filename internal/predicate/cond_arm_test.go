package predicate_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"monotonic/internal/core"
	"monotonic/internal/predicate"
)

// --- Arm: the goroutine-free callback analogue of Wait -------------------

func TestArmFiresOnSatisfaction(t *testing.T) {
	a, b := core.New(), core.New()
	cond := predicate.NewCond(predicate.SumAtLeast(10), a, b)
	var fired atomic.Int32
	cancel, armed := cond.Arm(func() { fired.Add(1) })
	if !armed {
		t.Fatal("Arm on an unsatisfied predicate reported not armed")
	}
	if cancel == nil {
		t.Fatal("Arm returned a nil cancel")
	}
	a.Increment(4)
	b.Increment(5)
	time.Sleep(10 * time.Millisecond)
	if n := fired.Load(); n != 0 {
		t.Fatalf("callback fired %d times below target", n)
	}
	a.Increment(1)
	deadline := time.Now().Add(5 * time.Second)
	for fired.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := fired.Load(); n != 1 {
		t.Fatalf("callback fired %d times, want 1", n)
	}
	if cancel() {
		t.Fatal("cancel after the callback ran reported it was prevented")
	}
}

func TestArmAlreadySatisfied(t *testing.T) {
	a := core.New()
	a.Increment(5)
	cond := predicate.NewCond(predicate.SumAtLeast(5), a)
	cancel, armed := cond.Arm(func() { t.Error("callback ran for an immediately-satisfied Arm") })
	if armed {
		t.Fatal("Arm on a satisfied predicate reported armed")
	}
	if cancel != nil {
		t.Fatal("Arm on a satisfied predicate returned a cancel")
	}
	if !cond.Poll() {
		t.Fatal("Arm's immediate evaluation did not settle the Cond")
	}
}

// TestArmKeepsSentinelsWithoutWaiters is the property the server
// dispatcher depends on: an armed callback holds the sentinels parked
// with zero goroutines blocked in Wait.
func TestArmKeepsSentinelsWithoutWaiters(t *testing.T) {
	a, b := core.New(), core.New()
	cond := predicate.NewCond(predicate.Thresholds([]uint64{3, 3}, 2), a, b)
	done := make(chan struct{})
	cancel, armed := cond.Arm(func() { close(done) })
	if !armed {
		t.Fatal("not armed")
	}
	defer cancel()
	st := cond.Stats()
	if st.Waiters != 0 || st.Hooks != 1 || st.Armed == 0 {
		t.Fatalf("stats after Arm = %+v, want 0 waiters, 1 hook, >0 armed sentinels", st)
	}
	a.Increment(3)
	b.Increment(3)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("callback never ran")
	}
}

// TestArmCancelDisarms mirrors TestCancelDisarms for the callback path:
// cancelling the only armed callback (with no Wait goroutines) must
// leave the watched counters sentinel-free so Reset works again.
func TestArmCancelDisarms(t *testing.T) {
	a := core.New()
	cond := predicate.NewCond(predicate.SumAtLeast(100), a)
	cancel, armed := cond.Arm(func() { t.Error("cancelled callback ran") })
	if !armed {
		t.Fatal("not armed")
	}
	if !cancel() {
		t.Fatal("cancel of a pending callback reported it already ran")
	}
	if cancel() {
		t.Fatal("second cancel reported it was prevented again")
	}
	st := cond.Stats()
	if st.Armed != 0 || st.Hooks != 0 {
		t.Fatalf("stats after cancel = %+v, want no armed sentinels, no hooks", st)
	}
	if err := a.Reset(); err != nil {
		t.Fatalf("Reset after Arm cancel: %v", err)
	}
	a.Increment(100)
	time.Sleep(10 * time.Millisecond)
}

// TestArmManyCallbacksOneClose: N armed callbacks all run on the single
// satisfying evaluation, interleaved with Wait goroutines.
func TestArmFanOut(t *testing.T) {
	a := core.New()
	cond := predicate.NewCond(predicate.SumAtLeast(1), a)
	const n = 64
	var fired atomic.Int32
	for i := 0; i < n; i++ {
		if _, armed := cond.Arm(func() { fired.Add(1) }); !armed {
			t.Fatal("not armed")
		}
	}
	errc := make(chan error, 1)
	go func() { errc <- cond.Wait(context.Background()) }()
	mustBlock(t, errc)
	a.Increment(1)
	waitNil(t, errc)
	deadline := time.Now().Add(5 * time.Second)
	for fired.Load() != n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := fired.Load(); got != n {
		t.Fatalf("%d of %d callbacks ran", got, n)
	}
}

func TestArmConcurrentCancelAndSatisfy(t *testing.T) {
	for round := 0; round < 50; round++ {
		a := core.New()
		cond := predicate.NewCond(predicate.SumAtLeast(1), a)
		var fired atomic.Int32
		cancel, armed := cond.Arm(func() { fired.Add(1) })
		if !armed {
			t.Fatal("not armed")
		}
		var wg sync.WaitGroup
		wg.Add(2)
		var prevented atomic.Bool
		go func() { defer wg.Done(); prevented.Store(cancel()) }()
		go func() { defer wg.Done(); a.Increment(1) }()
		wg.Wait()
		// Exactly one side wins: either the callback was prevented and
		// never runs, or it runs exactly once.
		time.Sleep(2 * time.Millisecond)
		ran := fired.Load()
		if prevented.Load() && ran != 0 {
			t.Fatalf("round %d: cancel reported prevented but callback ran %d times", round, ran)
		}
		if !prevented.Load() && ran != 1 {
			t.Fatalf("round %d: cancel lost the race but callback ran %d times", round, ran)
		}
	}
}

// --- External: one remote registration replaces the sentinel set ---------

// fakeHost is an External strategy with scripted behaviour.
type fakeHost struct {
	mu      sync.Mutex
	refuse  bool
	armCnt  int
	fire    func(bool)
	cancels int
}

func (h *fakeHost) strategy(fire func(bool)) (func() bool, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.armCnt++
	if h.refuse {
		return nil, false
	}
	h.fire = fire
	return func() bool {
		h.mu.Lock()
		defer h.mu.Unlock()
		h.cancels++
		prevented := h.fire != nil
		h.fire = nil
		return prevented
	}, true
}

func (h *fakeHost) fireNow(satisfied bool) bool {
	h.mu.Lock()
	fire := h.fire
	h.fire = nil
	h.mu.Unlock()
	if fire == nil {
		return false
	}
	fire(satisfied)
	return true
}

func TestExternalAuthoritativeFire(t *testing.T) {
	// The local counters never move: satisfaction arrives only through
	// the external registration, standing in for a server whose values
	// run ahead of the client's watermarks.
	a, b := core.New(), core.New()
	host := &fakeHost{}
	cond := predicate.NewCondExternal(predicate.SumAtLeast(10), host.strategy, a, b)
	errc := make(chan error, 1)
	go func() { errc <- cond.Wait(context.Background()) }()
	mustBlock(t, errc)
	st := cond.Stats()
	if !st.External {
		t.Fatalf("stats = %+v, want an armed external registration", st)
	}
	if st.Armed != 0 {
		t.Fatalf("stats = %+v: sentinels armed alongside the external registration", st)
	}
	if !host.fireNow(true) {
		t.Fatal("no registration to fire")
	}
	waitNil(t, errc)
}

func TestExternalLocalSatisfactionFirst(t *testing.T) {
	// A predicate the local bounds already satisfy settles without ever
	// consulting the host.
	a := core.New()
	a.Increment(7)
	host := &fakeHost{}
	cond := predicate.NewCondExternal(predicate.SumAtLeast(5), host.strategy, a)
	if err := cond.Wait(context.Background()); err != nil {
		t.Fatalf("Wait = %v", err)
	}
	if host.armCnt != 0 {
		t.Fatalf("host consulted %d times for a locally-satisfied predicate", host.armCnt)
	}
}

func TestExternalRefusalFallsBackToSentinels(t *testing.T) {
	a := core.New()
	host := &fakeHost{refuse: true}
	cond := predicate.NewCondExternal(predicate.SumAtLeast(3), host.strategy, a)
	errc := make(chan error, 1)
	go func() { errc <- cond.Wait(context.Background()) }()
	mustBlock(t, errc)
	st := cond.Stats()
	if st.External || st.Armed == 0 {
		t.Fatalf("stats after refusal = %+v, want sentinels armed, no external", st)
	}
	if host.armCnt != 1 {
		t.Fatalf("host consulted %d times, want exactly 1 (refusal is permanent)", host.armCnt)
	}
	a.Increment(3)
	waitNil(t, errc)
}

func TestExternalDegradeMidWaitFallsBackToSentinels(t *testing.T) {
	a := core.New()
	host := &fakeHost{}
	cond := predicate.NewCondExternal(predicate.SumAtLeast(3), host.strategy, a)
	errc := make(chan error, 1)
	go func() { errc <- cond.Wait(context.Background()) }()
	mustBlock(t, errc)
	if !host.fireNow(false) { // registration dies without an answer
		t.Fatal("no registration to fire")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st := cond.Stats(); !st.External && st.Armed > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if st := cond.Stats(); st.External || st.Armed == 0 {
		t.Fatalf("stats after degradation = %+v, want sentinels armed, no external", st)
	}
	a.Increment(3)
	waitNil(t, errc)
	if host.armCnt != 1 {
		t.Fatalf("host consulted %d times after degradation, want 1", host.armCnt)
	}
}

func TestExternalCancelOnLastWaiterOut(t *testing.T) {
	a := core.New()
	host := &fakeHost{}
	cond := predicate.NewCondExternal(predicate.SumAtLeast(3), host.strategy, a)
	ctx, stop := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- cond.Wait(ctx) }()
	mustBlock(t, errc)
	stop()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	host.mu.Lock()
	cancels, live := host.cancels, host.fire != nil
	host.mu.Unlock()
	if cancels != 1 || live {
		t.Fatalf("after last waiter out: cancels = %d, registration live = %v", cancels, live)
	}
	// A fresh Wait re-registers with the host.
	errc2 := make(chan error, 1)
	go func() { errc2 <- cond.Wait(context.Background()) }()
	mustBlock(t, errc2)
	if host.armCnt != 2 {
		t.Fatalf("host consulted %d times after re-wait, want 2", host.armCnt)
	}
	host.fireNow(true)
	waitNil(t, errc2)
}

// TestExternalStaleFireIgnored pins the generation guard: a cancelled
// registration's late unsatisfied fire must not tear down the newer
// registration that replaced it.
func TestExternalStaleFireIgnored(t *testing.T) {
	a := core.New()
	host := &fakeHost{}
	cond := predicate.NewCondExternal(predicate.SumAtLeast(3), host.strategy, a)

	ctx, stop := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- cond.Wait(ctx) }()
	mustBlock(t, errc)
	host.mu.Lock()
	staleFire := host.fire // captured before cancellation
	host.mu.Unlock()
	stop()
	<-errc

	errc2 := make(chan error, 1)
	go func() { errc2 <- cond.Wait(context.Background()) }()
	mustBlock(t, errc2)

	staleFire(false) // the old registration's last breath
	time.Sleep(10 * time.Millisecond)
	st := cond.Stats()
	if !st.External {
		t.Fatalf("stats after stale fire = %+v, want the new registration still armed", st)
	}
	host.fireNow(true)
	waitNil(t, errc2)
}
