package predicate

import (
	"context"
	"sync"
	"sync/atomic"
)

// Cond is one monotone-predicate wait shared by any number of waiters:
// a one-shot condition that becomes (and stays) satisfied once its
// predicate holds over its counters. Waiters park on a single done
// channel, so the wake fan-out for N waiters is one channel close —
// the sentinel bookkeeping is per watched counter, never per waiter.
//
// Lifecycle: sentinels are armed lazily by the first Wait (a Cond that
// is never waited on costs nothing), re-armed at fresh frontiers on
// every kick, and cancelled when the last waiter abandons the wait —
// a fully cancelled Cond leaves no trace on its counters, so their
// Reset works again. A satisfied Cond is terminal. Like a plain Check,
// a Cond must not span a Reset of any watched counter: build a new
// Cond for the new phase.
//
// Lock order: Cond.mu is taken strictly above any counter-internal
// lock (Value, Sentinel, and cancel are called with Cond.mu held; the
// engine never calls back into the Cond except through the hook fn,
// which only records the kick and spawns the evaluator).
type Cond struct {
	pred Pred
	cs   []Counter

	mu        sync.Mutex
	done      chan struct{}
	satisfied bool
	started   bool // sentinels armed (some Wait has begun and not all waiters left)
	waiters   int
	armed     []sentinel
	vals      []uint64 // scratch: last-read bounds
	fronts    []uint64 // scratch: frontier levels

	// cbs holds callbacks registered with Arm, keyed for cancellation;
	// an armed callback counts as a waiter for keep-armed purposes.
	cbs  map[uint64]func()
	cbID uint64

	// ext, when non-nil, is the external arming strategy: one
	// registration with a remote evaluator replaces the per-counter
	// sentinels (see NewCondExternal). Cleared permanently when the
	// host refuses or degrades.
	ext       External
	extArmed  bool
	extCancel func() bool
	extGen    uint64 // registration generation, so a stale fire cannot clobber a newer one

	// fires counts sentinel hook fires — the kicks delivered on wake
	// paths. Atomic: it is the only Cond state a signaller touches.
	fires atomic.Uint64
	// arms and reparks count sentinel registrations, total and beyond
	// each counter's first; guarded by mu.
	arms    uint64
	reparks uint64
}

// sentinel is one counter's armed hook, if any.
type sentinel struct {
	on     bool
	seen   bool // this counter has been armed at least once (repark accounting)
	cancel func() bool
}

// NewCond returns an unsatisfied Cond waiting for pred over the given
// counters. The counters' order is the coordinate order pred sees. A
// Thresholds predicate must be given exactly as many counters as it
// has levels.
func NewCond(pred Pred, counters ...Counter) *Cond {
	if pred == nil {
		panic("predicate: NewCond requires a predicate")
	}
	if len(counters) == 0 {
		panic("predicate: NewCond requires at least one counter")
	}
	if th, ok := pred.(thresholds); ok && len(th.levels) != len(counters) {
		panic("predicate: Thresholds level count does not match counter count")
	}
	return &Cond{
		pred:   pred,
		cs:     counters,
		done:   make(chan struct{}),
		armed:  make([]sentinel, len(counters)),
		vals:   make([]uint64, len(counters)),
		fronts: make([]uint64, len(counters)),
	}
}

// External is an alternative arming strategy: instead of parking one
// sentinel per watched counter at pigeonhole frontiers, the Cond makes
// a single registration with an external evaluator (a counterd holding
// every watched counter) that watches the whole predicate. The host
// must evaluate at registration time and fire if the predicate already
// holds — a registration must never lose a wake — and must eventually
// call fire exactly once unless cancel prevents it.
//
// fire(true) is authoritative satisfaction: the host observed the
// predicate holding over values at least as large as every local lower
// bound, and monotonicity makes that terminal. fire(false) means the
// registration died without an answer (connection lost, host
// degraded); the Cond then falls back to per-counter sentinels for the
// rest of its life. fire may be called from any goroutine and must not
// block; cancel reports whether fire was prevented.
//
// Both the strategy itself and the cancel it returns are invoked with
// the Cond's internal lock held — they sit exactly where Sentinel and
// its cancel sit in NewCond's strategy — so they must not block on
// network round trips (enqueue and return) and must not call back into
// the Cond.
type External func(fire func(satisfied bool)) (cancel func() bool, ok bool)

// NewCondExternal is NewCond with an external arming strategy: while
// ext is willing, the Cond parks one remote registration instead of
// len(counters) sentinels, and frontier moves cost nothing locally.
// Local evaluation still runs first on every Wait/Poll — a predicate
// already satisfied by the counters' own lower bounds settles without
// consulting ext — so satisfied-beats-cancelled determinism is
// unchanged from NewCond.
func NewCondExternal(pred Pred, ext External, counters ...Counter) *Cond {
	if ext == nil {
		panic("predicate: NewCondExternal requires an external strategy")
	}
	c := NewCond(pred, counters...)
	c.ext = ext
	return c
}

// fire is the sentinel hook shared by every watched counter: it runs on
// the waking goroutine with no locks held, so it only records the kick
// and hands re-evaluation to a short-lived goroutine — the signaller's
// critical path never pays for predicate evaluation, and between kicks
// the Cond holds no goroutine at all.
func (c *Cond) fire() {
	c.fires.Add(1)
	go c.kick()
}

// kick re-evaluates after a sentinel fire. If every waiter has since
// abandoned the wait (started dropped), the kick is moot: the fired
// sentinel was one-shot, nothing remains armed on that counter, and the
// next Wait re-arms from scratch.
func (c *Cond) kick() {
	c.mu.Lock()
	if c.started && !c.satisfied {
		c.evaluateLocked()
	}
	c.mu.Unlock()
}

// extKick applies an external registration's answer; like kick it runs
// on a short-lived goroutine spawned by the fire hook, off the host's
// delivery path. A satisfied fire settles the Cond no matter how old
// the registration is — the host observed the predicate holding over
// values dominating every local lower bound, and monotone truth never
// expires. An unsatisfied fire (registration died without an answer)
// only acts if it belongs to the current registration: it abandons the
// external strategy for good and falls back to sentinels for any wait
// still in progress. A stale unsatisfied fire — a cancelled
// registration's last breath racing a newer one — is dropped.
func (c *Cond) extKick(gen uint64, satisfied bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.satisfied {
		return
	}
	if satisfied {
		c.satisfyLocked()
		return
	}
	if gen != c.extGen || !c.extArmed {
		return
	}
	c.extArmed = false
	c.extCancel = nil
	c.ext = nil
	if c.started {
		c.evaluateLocked()
	}
}

// satisfyLocked settles the Cond: cancel whatever is still armed,
// release every waiter with one channel close, and run the armed
// callbacks. Called with mu held; callbacks therefore run under the
// Cond's lock and must honour the Arm contract (fast, no re-entry).
func (c *Cond) satisfyLocked() {
	c.disarmLocked()
	c.satisfied = true
	close(c.done)
	for id, fn := range c.cbs {
		delete(c.cbs, id)
		fn()
	}
}

// disarmLocked cancels every armed sentinel and any external
// registration. A sentinel that already fired reports false from
// cancel, which is fine — its hook is spent and its node accounting
// already drained. Called with mu held.
func (c *Cond) disarmLocked() {
	for i := range c.armed {
		if c.armed[i].on {
			c.armed[i].on = false
			c.armed[i].cancel()
		}
	}
	if c.extArmed {
		c.extArmed = false
		cancel := c.extCancel
		c.extCancel = nil
		cancel()
	}
}

// evaluateLocked reads fresh bounds, settles the Cond if the predicate
// holds, and otherwise re-parks one sentinel per still-unsatisfied
// coordinate at the predicate's frontier levels. Called with mu held.
// The bound reads (Value) and the frontier re-arms (Sentinel) are both
// lock-free against the counters' engines now — Value is the atomic
// watermark and Sentinel registers on the frontier level's stripe — so
// holding Cond.mu across the pass no longer serializes the evaluator
// against incrementers on any engine mutex.
//
// The whole armed set is rebuilt on every pass: sentinels are one-shot
// and cheap (one waiter count on a node), and rebuilding makes the
// fired/cancelled bookkeeping trivially correct — there is never a
// stale hook to reason about. The loop re-runs only when a counter
// advanced past its frontier while arming (Sentinel reported
// not-armed), which strictly raises the next pass's bounds, so it
// terminates.
func (c *Cond) evaluateLocked() {
	// External strategy: one remote registration replaces the whole
	// sentinel set, and — because the registration watches the complete
	// predicate, not a frontier slice of it — it never needs re-parking:
	// once armed, every future evaluation happens at the host. Local
	// bounds are still consulted first so an already-satisfied predicate
	// settles without a registration.
	if c.ext != nil {
		if c.pred.Holds(c.readLocked()) {
			c.satisfyLocked()
			return
		}
		if c.extArmed {
			return
		}
		c.extGen++
		gen := c.extGen
		fire := func(satisfied bool) {
			c.fires.Add(1)
			go c.extKick(gen, satisfied)
		}
		if cancel, ok := c.ext(fire); ok {
			c.extArmed = true
			c.extCancel = cancel
			c.arms++
			return
		}
		c.ext = nil // host refused: per-counter sentinels from here on
	}
	for {
		c.disarmLocked()
		for i, ctr := range c.cs {
			c.vals[i] = ctr.Value()
		}
		if c.pred.Holds(c.vals) {
			c.satisfyLocked()
			return
		}
		c.pred.Frontiers(c.vals, c.fronts)
		stale := false
		for i, ctr := range c.cs {
			if c.fronts[i] <= c.vals[i] {
				continue // coordinate already satisfied: no sentinel
			}
			cancel, armed := ctr.Sentinel(c.fronts[i], c.fire)
			if !armed {
				// The counter crossed the frontier between the Value
				// read and the registration; everything armed so far
				// would wait on stale frontiers, so start over with
				// fresh bounds.
				stale = true
				break
			}
			c.arms++
			if c.armed[i].seen {
				c.reparks++
			}
			c.armed[i] = sentinel{on: true, seen: true, cancel: cancel}
		}
		if !stale {
			return
		}
	}
}

// Wait blocks until the predicate holds or ctx is cancelled. A
// satisfied predicate beats a cancelled context — Wait evaluates before
// consulting ctx, and re-checks satisfaction when the two race — and
// cancellation leaves no trace: when the last waiter gives up, every
// sentinel is cancelled and the watched counters are exactly as if the
// Cond never existed. Any number of goroutines may Wait concurrently;
// all are released by the single satisfying evaluation.
func (c *Cond) Wait(ctx context.Context) error {
	select {
	case <-c.done:
		// Already satisfied: the done channel is the Cond's watermark —
		// closed exactly once, at satisfaction, which is terminal — so a
		// Wait on a settled Cond returns without touching Cond.mu, the
		// predicate-tier analogue of the counters' lock-free satisfied
		// Check.
		return nil
	default:
	}
	c.mu.Lock()
	if !c.satisfied {
		if !c.started {
			c.started = true
			c.evaluateLocked()
		} else if c.pred.Holds(c.readLocked()) {
			// Already armed by an earlier waiter: a cheap re-check (no
			// re-arm) keeps "satisfied beats cancelled" exact even when
			// a kick is still in flight to the evaluator goroutine.
			c.satisfyLocked()
		}
	}
	if c.satisfied {
		c.mu.Unlock()
		return nil
	}
	c.waiters++
	c.mu.Unlock()

	select {
	case <-c.done:
		c.mu.Lock()
		c.waiters--
		c.mu.Unlock()
		return nil
	case <-ctx.Done():
		c.mu.Lock()
		defer c.mu.Unlock()
		c.waiters--
		if c.satisfied {
			return nil // satisfaction and cancellation raced: satisfied wins
		}
		if c.waiters == 0 && len(c.cbs) == 0 {
			// Last waiter out turns off the lights: no sentinel stays
			// parked for a wait nobody is waiting on. An armed callback
			// counts as a waiter — it represents a remote session still
			// blocked on this predicate.
			c.disarmLocked()
			c.started = false
		}
		return ctx.Err()
	}
}

// Arm registers fn to run exactly once when the Cond settles, without
// parking a goroutine — the callback analogue of Wait, built for the
// counterd dispatcher, where one parked Cond entry must stand in for a
// whole remote session's wait. Arm evaluates immediately: if the
// predicate already holds (settling the Cond if needed) it returns
// (nil, false) and fn will never run — the caller answers the waiter
// directly. Otherwise it returns (cancel, true); fn runs on the
// satisfying goroutine with the Cond's internal lock held, so it must
// not block and must not call back into the Cond (enqueue the wake and
// return — the same discipline as a sentinel hook). cancel reports
// whether fn was prevented from running; a cancelled callback never
// fires. While any armed callback remains, the Cond keeps its
// sentinels parked even if every Wait goroutine has left.
func (c *Cond) Arm(fn func()) (cancel func() bool, armed bool) {
	c.mu.Lock()
	if !c.satisfied {
		if !c.started {
			c.started = true
			c.evaluateLocked()
		} else if c.pred.Holds(c.readLocked()) {
			c.satisfyLocked()
		}
	}
	if c.satisfied {
		c.mu.Unlock()
		return nil, false
	}
	if c.cbs == nil {
		c.cbs = make(map[uint64]func())
	}
	id := c.cbID
	c.cbID++
	c.cbs[id] = fn
	c.mu.Unlock()
	return func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		if _, ok := c.cbs[id]; !ok {
			return false // already ran (satisfaction drained it) or already cancelled
		}
		delete(c.cbs, id)
		if c.waiters == 0 && len(c.cbs) == 0 && c.started && !c.satisfied {
			c.disarmLocked()
			c.started = false
		}
		return true
	}, true
}

// readLocked refreshes and returns the value bounds. Called with mu
// held.
func (c *Cond) readLocked() []uint64 {
	for i, ctr := range c.cs {
		c.vals[i] = ctr.Value()
	}
	return c.vals
}

// Poll reports whether the predicate holds right now, settling the Cond
// (and releasing any waiters) if it does. It never arms sentinels and
// never blocks — the zero/negative-timeout analogue of Wait.
func (c *Cond) Poll() bool {
	select {
	case <-c.done:
		return true // settled: no lock needed (see Wait)
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.satisfied {
		return true
	}
	if c.pred.Holds(c.readLocked()) {
		c.satisfyLocked()
		return true
	}
	return false
}

// Done returns a channel closed when the predicate holds. It does NOT
// arm the Cond: a Done-only observer sees satisfaction only once some
// Wait or Poll has driven evaluation. It exists for composing a Cond
// into selects alongside a Wait elsewhere.
func (c *Cond) Done() <-chan struct{} { return c.done }

// CondStats is a snapshot of a Cond's mechanism counters, for tests and
// the E24 experiment.
type CondStats struct {
	Fires     uint64 // sentinel/external hook fires (re-evaluation kicks)
	Arms      uint64 // sentinel + external registrations, total
	Reparks   uint64 // registrations beyond each counter's first — frontier moves
	Armed     int    // sentinels currently armed
	Waiters   int    // goroutines currently blocked in Wait
	Hooks     int    // callbacks currently armed via Arm
	External  bool   // an external registration is currently armed
	Satisfied bool
}

// Stats returns a snapshot of the Cond's mechanism counters.
func (c *Cond) Stats() CondStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CondStats{
		Fires:     c.fires.Load(),
		Arms:      c.arms,
		Reparks:   c.reparks,
		Waiters:   c.waiters,
		Hooks:     len(c.cbs),
		External:  c.extArmed,
		Satisfied: c.satisfied,
	}
	for i := range c.armed {
		if c.armed[i].on {
			s.Armed++
		}
	}
	return s
}
