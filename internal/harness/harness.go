// Package harness provides the measurement machinery that regenerates the
// experiment tables in EXPERIMENTS.md: repeated timing with robust
// statistics, parameter sweeps, and markdown/CSV table rendering. It
// deliberately depends on nothing but the standard library and
// internal/workload, so every experiment binary can embed it.
package harness

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Timing is the result of repeated measurement of one configuration.
type Timing struct {
	Durations []time.Duration
}

// Measure runs setup-free f reps times and records each duration. A
// warm-up run is executed first and discarded, so one-time allocation and
// scheduler ramp-up do not pollute the samples.
func Measure(reps int, f func()) Timing {
	f() // warm-up
	t := Timing{Durations: make([]time.Duration, 0, reps)}
	for i := 0; i < reps; i++ {
		start := time.Now()
		f()
		t.Durations = append(t.Durations, time.Since(start))
	}
	return t
}

// Median returns the median duration.
func (t Timing) Median() time.Duration {
	if len(t.Durations) == 0 {
		return 0
	}
	d := append([]time.Duration(nil), t.Durations...)
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	n := len(d)
	if n%2 == 1 {
		return d[n/2]
	}
	return (d[n/2-1] + d[n/2]) / 2
}

// Mean returns the arithmetic mean duration.
func (t Timing) Mean() time.Duration {
	if len(t.Durations) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range t.Durations {
		sum += d
	}
	return sum / time.Duration(len(t.Durations))
}

// Min returns the fastest sample.
func (t Timing) Min() time.Duration {
	if len(t.Durations) == 0 {
		return 0
	}
	min := t.Durations[0]
	for _, d := range t.Durations[1:] {
		if d < min {
			min = d
		}
	}
	return min
}

// Max returns the slowest sample.
func (t Timing) Max() time.Duration {
	if len(t.Durations) == 0 {
		return 0
	}
	max := t.Durations[0]
	for _, d := range t.Durations[1:] {
		if d > max {
			max = d
		}
	}
	return max
}

// Stddev returns the sample standard deviation.
func (t Timing) Stddev() time.Duration {
	n := len(t.Durations)
	if n < 2 {
		return 0
	}
	mean := float64(t.Mean())
	var ss float64
	for _, d := range t.Durations {
		diff := float64(d) - mean
		ss += diff * diff
	}
	return time.Duration(math.Sqrt(ss / float64(n-1)))
}

// Speedup returns base.Median / t.Median as a ratio (how many times
// faster t is than base; > 1 means t wins).
func Speedup(base, t Timing) float64 {
	m := t.Median()
	if m == 0 {
		return math.Inf(1)
	}
	return float64(base.Median()) / float64(m)
}

// Table accumulates experiment rows and renders them as markdown or CSV.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends one row; the cell count should match the headers.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	pad := func(s string, w int) string {
		return s + strings.Repeat(" ", w-len(s))
	}
	b.WriteString("|")
	for i, h := range t.Headers {
		b.WriteString(" " + pad(h, widths[i]) + " |")
	}
	b.WriteString("\n|")
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2) + "|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		b.WriteString("|")
		for i := range t.Headers {
			c := ""
			if i < len(row) {
				c = row[i]
			}
			b.WriteString(" " + pad(c, widths[i]) + " |")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing
// commas or quotes are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.Headers))
	for i, h := range t.Headers {
		cells[i] = esc(h)
	}
	b.WriteString(strings.Join(cells, ",") + "\n")
	for _, row := range t.Rows {
		cells = cells[:0]
		for _, c := range row {
			cells = append(cells, esc(c))
		}
		b.WriteString(strings.Join(cells, ",") + "\n")
	}
	return b.String()
}

// Fprint writes the markdown rendering followed by a blank line.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintln(w, t.Markdown())
}

// Dur formats a duration for a table cell with three significant places.
func Dur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// Ratio formats a speedup factor as "1.23x".
func Ratio(x float64) string {
	if math.IsInf(x, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", x)
}

// I formats an integer cell.
func I(v int) string { return fmt.Sprint(v) }

// U formats an unsigned cell.
func U(v uint64) string { return fmt.Sprint(v) }

// F formats a float cell with the given precision.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }
