package harness

import (
	"math"
	"strings"
	"testing"
	"time"
)

func fixed(ds ...time.Duration) Timing { return Timing{Durations: ds} }

func TestMedian(t *testing.T) {
	if got := fixed(3, 1, 2).Median(); got != 2 {
		t.Fatalf("odd median = %v", got)
	}
	if got := fixed(4, 1, 3, 2).Median(); got != 2 { // (2+3)/2 truncated
		t.Fatalf("even median = %v", got)
	}
	if got := fixed().Median(); got != 0 {
		t.Fatalf("empty median = %v", got)
	}
}

func TestMeanMinMax(t *testing.T) {
	tm := fixed(10, 20, 30)
	if tm.Mean() != 20 || tm.Min() != 10 || tm.Max() != 30 {
		t.Fatalf("mean/min/max = %v/%v/%v", tm.Mean(), tm.Min(), tm.Max())
	}
	if fixed().Mean() != 0 || fixed().Min() != 0 || fixed().Max() != 0 {
		t.Fatal("empty timing stats nonzero")
	}
}

func TestStddev(t *testing.T) {
	if got := fixed(10, 10, 10).Stddev(); got != 0 {
		t.Fatalf("constant stddev = %v", got)
	}
	// Samples 2,4,4,4,5,5,7,9 have sample stddev ~2.138, truncated to
	// 2ns by the integer Duration.
	got := fixed(2, 4, 4, 4, 5, 5, 7, 9).Stddev()
	if got != 2 {
		t.Fatalf("stddev = %v, want 2ns", got)
	}
	// At microsecond scale the fraction is visible: scale by 1000.
	got = fixed(2000, 4000, 4000, 4000, 5000, 5000, 7000, 9000).Stddev()
	if math.Abs(float64(got)-2138) > 1 {
		t.Fatalf("scaled stddev = %v, want ~2138ns", got)
	}
	if fixed(5).Stddev() != 0 {
		t.Fatal("single-sample stddev nonzero")
	}
}

func TestSpeedup(t *testing.T) {
	base := fixed(100, 100, 100)
	fast := fixed(50, 50, 50)
	if got := Speedup(base, fast); got != 2 {
		t.Fatalf("speedup = %v", got)
	}
	if !math.IsInf(Speedup(base, fixed(0)), 1) {
		t.Fatal("zero-median speedup not inf")
	}
}

func TestMeasureCollects(t *testing.T) {
	calls := 0
	tm := Measure(5, func() { calls++ })
	if len(tm.Durations) != 5 {
		t.Fatalf("collected %d samples", len(tm.Durations))
	}
	if calls != 6 { // warm-up + 5
		t.Fatalf("f called %d times, want 6", calls)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.Add("alpha", "1")
	tb.Add("b", "22222")
	md := tb.Markdown()
	if !strings.Contains(md, "### Demo") {
		t.Fatal("missing title")
	}
	if !strings.Contains(md, "| name  | value |") {
		t.Fatalf("header misaligned:\n%s", md)
	}
	if !strings.Contains(md, "| alpha | 1     |") {
		t.Fatalf("row misaligned:\n%s", md)
	}
	// Short rows must not panic and must pad.
	tb2 := NewTable("", "a", "b")
	tb2.Add("only")
	if !strings.Contains(tb2.Markdown(), "| only |") {
		t.Fatal("short row mishandled")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.Add(`x,y`, `q"z`)
	csv := tb.CSV()
	want := "a,b\n\"x,y\",\"q\"\"z\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestFormatters(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{500 * time.Nanosecond, "500ns"},
		{1500 * time.Nanosecond, "1.5µs"},
		{2500 * time.Microsecond, "2.50ms"},
		{1500 * time.Millisecond, "1.500s"},
	}
	for _, c := range cases {
		if got := Dur(c.d); got != c.want {
			t.Errorf("Dur(%v) = %q, want %q", c.d, got, c.want)
		}
	}
	if Ratio(1.234) != "1.23x" {
		t.Fatalf("Ratio = %q", Ratio(1.234))
	}
	if Ratio(math.Inf(1)) != "inf" {
		t.Fatal("Ratio(inf)")
	}
	if I(7) != "7" || U(9) != "9" || F(1.5, 2) != "1.50" {
		t.Fatal("numeric formatters")
	}
}
