package accumulate

import (
	"testing"
	"testing/quick"

	"monotonic/internal/sthreads"
)

// TestCounterSumDeterministic is half of experiment E6: the counter
// program returns the bit-exact sequential fold on every run, under
// arbitrary jitter.
func TestCounterSumDeterministic(t *testing.T) {
	values := SumValues(64, 1)
	want := SumSeq(values)
	for trial := 0; trial < 50; trial++ {
		got := SumCounter(sthreads.Concurrent, values, uint64(trial))
		if got != want {
			t.Fatalf("trial %d: counter sum %v != sequential %v", trial, got, want)
		}
	}
}

// TestCounterSumSequentialEquivalence: Concurrent and Sequential modes of
// the counter program agree bit-for-bit (section 6 property, E9).
func TestCounterSumSequentialEquivalence(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8%32) + 1
		values := SumValues(n, seed)
		seq := SumCounter(sthreads.Sequential, values, seed)
		con := SumCounter(sthreads.Concurrent, values, seed)
		return seq == con && seq == SumSeq(values)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSumOrderSensitive confirms the fixture actually makes addition
// order matter — otherwise the determinism comparison is vacuous.
func TestSumOrderSensitive(t *testing.T) {
	values := SumValues(7, 3)
	sums := PermutationSums(values)
	if len(sums) < 2 {
		t.Fatalf("all %d permutations of fixture sum identically; fixture too tame", 5040)
	}
}

// TestLockSumIsSomePermutation: the lock program's answer is always the
// fold of some arrival order — mutual exclusion holds even though order
// does not.
func TestLockSumIsSomePermutation(t *testing.T) {
	values := SumValues(6, 9)
	sums := PermutationSums(values)
	for trial := 0; trial < 25; trial++ {
		got := SumLock(values, uint64(trial+1))
		if !sums[got] {
			t.Fatalf("trial %d: lock sum %v is not any permutation fold", trial, got)
		}
	}
}

// TestLockSumNondeterministic demonstrates the other half of E6: across
// many jittered runs the lock program produces more than one distinct
// result. (With 8 threads of random arrival order and an order-sensitive
// fixture, the probability of seeing a single result in 400 runs is
// negligible.)
func TestLockSumNondeterministic(t *testing.T) {
	values := SumValues(8, 5)
	seen := make(map[float64]bool)
	for trial := 0; trial < 400 && len(seen) < 2; trial++ {
		seen[SumLock(values, uint64(trial+1))] = true
	}
	if len(seen) < 2 {
		t.Fatal("lock-based summation produced one result in 400 jittered runs; nondeterminism not observed")
	}
}

// TestCounterAppendIsIdentity: the counter list is always 0..n-1.
func TestCounterAppendIsIdentity(t *testing.T) {
	for _, mode := range sthreads.Modes {
		for trial := 0; trial < 20; trial++ {
			got := AppendCounter(mode, 32, uint64(trial))
			for i, v := range got {
				if v != i {
					t.Fatalf("mode %v trial %d: position %d holds %d", mode, trial, i, v)
				}
			}
		}
	}
}

// TestLockAppendIsPermutation: the lock list is a permutation (mutual
// exclusion loses no element) though not necessarily ordered.
func TestLockAppendIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		const n = 24
		got := AppendLock(n, seed)
		if len(got) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range got {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestLockAppendNondeterministic: across jittered runs the arrival order
// varies.
func TestLockAppendNondeterministic(t *testing.T) {
	seen := make(map[string]bool)
	for trial := 0; trial < 400 && len(seen) < 2; trial++ {
		got := AppendLock(8, uint64(trial+1))
		key := ""
		for _, v := range got {
			key += string(rune('a' + v))
		}
		seen[key] = true
	}
	if len(seen) < 2 {
		t.Fatal("lock-based append produced one order in 400 jittered runs")
	}
}

func TestEmptyAndSingle(t *testing.T) {
	if got := SumCounter(sthreads.Concurrent, nil, 0); got != 0 {
		t.Fatalf("empty sum = %v", got)
	}
	if got := SumLock([]float64{42}, 1); got != 42 {
		t.Fatalf("single lock sum = %v", got)
	}
	if got := AppendCounter(sthreads.Concurrent, 0, 0); len(got) != 0 {
		t.Fatalf("empty append = %v", got)
	}
}

func TestSeqFoldGeneric(t *testing.T) {
	got := SeqFold(4, func(i int) string { return string(rune('a' + i)) },
		func(acc, s string) string { return acc + s }, "")
	if got != "abcd" {
		t.Fatalf("SeqFold = %q", got)
	}
}
