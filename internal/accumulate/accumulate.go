// Package accumulate implements the paper's section 5.2 pattern: a result
// accumulated from independently computed subresults, where the
// Accumulate operation is not associative (floating-point addition, list
// append), so the order of accumulation determines the result.
//
// Two engines are provided. LockFold is the traditional program: a lock
// provides mutual exclusion, and subresults are folded in nondeterministic
// arrival order. OrderedFold replaces the pair of lock operations with a
// pair of counter operations — Check(i) to enter, Increment(1) to leave —
// providing sequential ordering in addition to mutual exclusion, so the
// result is deterministic and equal to the sequential fold. (The paper's
// listing ends the critical section with "resultCount.Check(1)", an
// obvious typographical slip for Increment(1).)
package accumulate

import (
	"monotonic/internal/core"
	"monotonic/internal/sthreads"
	"monotonic/internal/sync2"
	"monotonic/internal/workload"
)

// LockFold computes compute(i) for i in [0,n) on concurrent threads and
// folds the subresults into zero under a mutual-exclusion lock, in
// whatever order the threads reach the critical section. jitterSeed, if
// nonzero, adds a random spin before each accumulation to vary arrival
// order, modelling unequal compute times.
func LockFold[S, R any](n int, compute func(i int) S, fold func(R, S) R, zero R, jitterSeed uint64) R {
	result := zero
	var lock sync2.TicketLock
	jitters := makeJitters(n, jitterSeed)
	sthreads.ForN(sthreads.Concurrent, n, func(i int) {
		sub := compute(i)
		jitters.apply(i)
		lock.Lock()
		result = fold(result, sub)
		lock.Unlock()
	})
	return result
}

// OrderedFold is the counter program: thread i may accumulate only once
// the counter has reached i, and releases thread i+1 by incrementing, so
// accumulation happens in exactly index order regardless of scheduling.
// In Sequential mode it degenerates to a plain loop — the two modes must
// agree bit-for-bit (the section 6 equivalence property holds for this
// program).
func OrderedFold[S, R any](mode sthreads.Mode, n int, compute func(i int) S, fold func(R, S) R, zero R, jitterSeed uint64) R {
	result := zero
	resultCount := core.New()
	jitters := makeJitters(n, jitterSeed)
	sthreads.ForN(mode, n, func(i int) {
		sub := compute(i)
		jitters.apply(i)
		resultCount.Check(uint64(i))
		result = fold(result, sub)
		resultCount.Increment(1)
	})
	return result
}

// jitterPlan gives each thread a random compute delay: a spin (models
// unequal work) plus explicit scheduler yields (so arrival order varies
// even under GOMAXPROCS=1, where spinning alone never deschedules).
type jitterPlan struct {
	spins  []int
	yields []int
}

func makeJitters(n int, seed uint64) jitterPlan {
	if seed == 0 {
		return jitterPlan{}
	}
	rng := workload.NewRNG(seed)
	p := jitterPlan{spins: make([]int, n), yields: make([]int, n)}
	for i := 0; i < n; i++ {
		p.spins[i] = rng.Intn(20000)
		p.yields[i] = rng.Intn(16)
	}
	return p
}

func (p jitterPlan) apply(i int) {
	if p.spins == nil {
		return
	}
	workload.Spin(p.spins[i])
	workload.Yield(p.yields[i])
}

// SeqFold is the sequential oracle: a plain left fold.
func SeqFold[S, R any](n int, compute func(i int) S, fold func(R, S) R, zero R) R {
	result := zero
	for i := 0; i < n; i++ {
		result = fold(result, compute(i))
	}
	return result
}

// SumValues returns a fixture of floats spanning many magnitudes, so that
// summation order visibly changes the rounded result (float addition is
// not associative).
func SumValues(n int, seed uint64) []float64 {
	rng := workload.NewRNG(seed)
	v := make([]float64, n)
	for i := range v {
		// Alternate huge and tiny magnitudes.
		mag := float64(int64(1) << uint(rng.Intn(50)))
		v[i] = (rng.Float64() - 0.5) * mag
	}
	return v
}

// SumLock folds values with the lock engine.
func SumLock(values []float64, jitterSeed uint64) float64 {
	return LockFold(len(values), func(i int) float64 { return values[i] },
		func(a, x float64) float64 { return a + x }, 0, jitterSeed)
}

// SumCounter folds values with the counter engine.
func SumCounter(mode sthreads.Mode, values []float64, jitterSeed uint64) float64 {
	return OrderedFold(mode, len(values), func(i int) float64 { return values[i] },
		func(a, x float64) float64 { return a + x }, 0, jitterSeed)
}

// SumSeq is the sequential oracle for summation.
func SumSeq(values []float64) float64 {
	s := 0.0
	for _, v := range values {
		s += v
	}
	return s
}

// AppendLock builds a list of thread indices with the lock engine: a
// valid but order-nondeterministic permutation of [0,n).
func AppendLock(n int, jitterSeed uint64) []int {
	return LockFold(n, func(i int) int { return i },
		func(acc []int, x int) []int { return append(acc, x) }, []int(nil), jitterSeed)
}

// AppendCounter builds the list with the counter engine: always exactly
// 0,1,...,n-1.
func AppendCounter(mode sthreads.Mode, n int, jitterSeed uint64) []int {
	return OrderedFold(mode, n, func(i int) int { return i },
		func(acc []int, x int) []int { return append(acc, x) }, []int(nil), jitterSeed)
}

// PermutationSums enumerates the sums of all permutations of values
// (len(values) must be small) and returns the set of distinct results.
// It is the oracle for "the lock program's answer is always the fold of
// some arrival order".
func PermutationSums(values []float64) map[float64]bool {
	out := make(map[float64]bool)
	perm := make([]int, len(values))
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == len(perm) {
			s := 0.0
			for _, idx := range perm {
				s += values[idx]
			}
			out[s] = true
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return out
}
