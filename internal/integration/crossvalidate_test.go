package integration_test

import (
	"fmt"
	"testing"

	"monotonic/internal/explore"
	"monotonic/internal/sched"
)

// Cross-validation between the two section 6 verification tools: the
// exhaustive model checker (internal/explore) and the executable schedule
// fuzzer (internal/sched) must agree on outcome sets for the same
// programs — the fuzzer can only ever observe a subset, and for these
// small programs enough seeds observe all of it.

func TestLockFoldOutcomesAgreeAcrossTools(t *testing.T) {
	const n = 4
	model := explore.MustExplore(explore.LockAccumulateProgram(n))

	observed := map[int64]bool{}
	w := sched.NewWorld()
	m := w.Mutex()
	for seed := uint64(0); seed < 3000; seed++ {
		var x int64
		bodies := make([]func(*sched.T), n)
		for i := range bodies {
			i := i
			bodies[i] = func(t *sched.T) {
				w.M(m).Lock(t)
				x = x*2 + int64(i)
				w.M(m).Unlock(t)
			}
		}
		if out := w.Run(seed, bodies...); out.Deadlock {
			t.Fatalf("seed %d deadlocked", seed)
		}
		observed[x] = true
	}

	if len(observed) != len(model.Outcomes) {
		t.Fatalf("fuzzer observed %d outcomes, model has %d", len(observed), len(model.Outcomes))
	}
	for x := range observed {
		key := fmt.Sprintf("x0=%d", x)
		if _, ok := model.Outcomes[key]; !ok {
			t.Fatalf("fuzzer outcome %s not reachable in the model", key)
		}
	}
}

func TestCounterFoldSingleOutcomeAcrossTools(t *testing.T) {
	const n = 4
	model := explore.MustExplore(explore.OrderedAccumulateProgram(n))
	if len(model.Outcomes) != 1 {
		t.Fatalf("model outcomes %v", model.OutcomeList())
	}
	var want int64
	for _, vars := range model.Outcomes {
		want = vars[0]
	}

	w := sched.NewWorld()
	c := w.Counter()
	for seed := uint64(0); seed < 500; seed++ {
		var x int64
		bodies := make([]func(*sched.T), n)
		for i := range bodies {
			i := i
			bodies[i] = func(t *sched.T) {
				w.C(c).Check(t, uint64(i))
				x = x*2 + int64(i)
				w.C(c).Increment(t, 1)
			}
		}
		if out := w.Run(seed, bodies...); out.Deadlock {
			t.Fatalf("seed %d deadlocked", seed)
		}
		if x != want {
			t.Fatalf("seed %d: x = %d, model says %d", seed, x, want)
		}
	}
}
