// Package integration_test exercises whole pipelines across modules: the
// public counter API driving the pattern packages, the determinacy
// checker applied to the real algorithms, and the derived mechanisms
// standing in for the traditional ones inside the paper's programs.
package integration_test

import (
	"reflect"
	"testing"

	"monotonic/counter"
	"monotonic/internal/core"
	"monotonic/internal/derived"
	"monotonic/internal/detect"
	"monotonic/internal/explore"
	"monotonic/internal/graph"
	"monotonic/internal/paraffins"
	"monotonic/internal/stencil"
	"monotonic/internal/sthreads"
	"monotonic/internal/workload"
)

// TestPublicAPIDrivesAPSP rebuilds the section 4 counter program against
// the public counter package (not internal/core) and cross-checks it with
// the internal implementation and the Bellman-Ford oracle.
func TestPublicAPIDrivesAPSP(t *testing.T) {
	const n, numThreads = 48, 4
	edge := graph.RandomNegative(n, 0.35, 15, 5, 21)
	want, ok := graph.AllPairsBellmanFord(edge)
	if !ok {
		t.Fatal("oracle found a negative cycle")
	}

	path := edge.Clone()
	kRow := make(graph.Matrix, n+1)
	kRow[0] = append([]int(nil), path[0]...)
	var kCount counter.Counter
	sthreads.ForN(sthreads.Concurrent, numThreads, func(tid int) {
		lo, hi := tid*n/numThreads, (tid+1)*n/numThreads
		for k := 0; k < n; k++ {
			kCount.Check(uint64(k))
			krow := kRow[k]
			for i := lo; i < hi; i++ {
				row := path[i]
				pik := row[k]
				for j := 0; j < n; j++ {
					if pik < graph.Inf && krow[j] < graph.Inf {
						if d := pik + krow[j]; d < row[j] {
							row[j] = d
						}
					}
				}
				if i == k+1 {
					kRow[k+1] = append([]int(nil), path[k+1]...)
					kCount.Increment(1)
				}
			}
		}
	})
	if !path.Equal(want) {
		t.Fatal("public-API APSP diverged from Bellman-Ford")
	}
	if !path.Equal(graph.ShortestPaths3(edge, numThreads, sthreads.Concurrent, nil)) {
		t.Fatal("public-API APSP diverged from internal implementation")
	}
}

// TestDerivedBarrierDrivesStencilShape: the counter-based barrier from
// internal/derived can replace sync2.Barrier in a barrier-style stencil
// and produce the oracle's results.
func TestDerivedBarrierDrivesStencilShape(t *testing.T) {
	const cells, steps, numThreads = 64, 30, 4
	init := stencil.InitialRod(cells)
	want := stencil.RunSequential(init, steps, stencil.Heat)

	state := append([]float64(nil), init...)
	b := derived.NewBarrier(numThreads)
	interior := cells - 2
	sthreads.ForN(sthreads.Concurrent, numThreads, func(tid int) {
		party := b.Register()
		lo := 1 + tid*interior/numThreads
		hi := 1 + (tid+1)*interior/numThreads
		buf := make([]float64, hi-lo)
		for s := 0; s < steps; s++ {
			for i := lo; i < hi; i++ {
				buf[i-lo] = stencil.Heat(state[i-1], state[i], state[i+1])
			}
			party.Pass()
			copy(state[lo:hi], buf)
			party.Pass()
		}
	})
	if !reflect.DeepEqual(state, want) {
		t.Fatal("derived-barrier stencil diverged from sequential oracle")
	}
}

// TestDetectOnRealStencilProtocol instruments the section 5.1 per-cell
// counter protocol with the determinacy checker: the protocol must be
// violation-free, and dropping one Check must be flagged.
func TestDetectOnRealStencilProtocol(t *testing.T) {
	run := func(skipOneCheck bool) []detect.Violation {
		const cells, steps = 8, 4
		reg := detect.NewRegistry()
		root := reg.Root()
		state := make([]*detect.Var[float64], cells)
		for i := range state {
			state[i] = detect.NewVar(root, "cell", 0.0)
		}
		state[0].Write(root, 100)
		state[cells-1].Write(root, 100)
		c := make([]*detect.Counter, cells)
		for i := range c {
			c[i] = detect.NewCounter(root)
		}
		c[0].Increment(root, 2*steps)
		c[cells-1].Increment(root, 2*steps)

		bodies := make([]func(*detect.Thread), cells-2)
		for idx := range bodies {
			i := idx + 1
			bodies[idx] = func(th *detect.Thread) {
				my := state[i].Read(th)
				for tstep := uint64(1); tstep <= steps; tstep++ {
					if !(skipOneCheck && i == 3 && tstep == 2) {
						c[i-1].Check(th, 2*tstep-2)
					}
					l := state[i-1].Read(th)
					c[i+1].Check(th, 2*tstep-2)
					r := state[i+1].Read(th)
					c[i].Increment(th, 1)
					my = stencil.Heat(l, my, r)
					c[i-1].Check(th, 2*tstep-1)
					c[i+1].Check(th, 2*tstep-1)
					state[i].Write(th, my)
					c[i].Increment(th, 1)
				}
			}
		}
		root.Go(bodies...)
		return reg.Violations()
	}

	if v := run(false); len(v) != 0 {
		t.Fatalf("correct protocol flagged: %v", v)
	}
	flagged := false
	for trial := 0; trial < 50 && !flagged; trial++ {
		flagged = len(run(true)) > 0
	}
	if !flagged {
		t.Fatal("protocol with a missing Check never flagged in 50 runs")
	}
}

// TestExploreModelsMatchRealCounters: the abstract model and the real
// counter produce the same deterministic outcome for the ordered fold.
func TestExploreModelsMatchRealCounters(t *testing.T) {
	const n = 5
	res := explore.MustExplore(explore.OrderedAccumulateProgram(n))
	if len(res.Outcomes) != 1 {
		t.Fatalf("model outcomes = %v", res.OutcomeList())
	}
	var modelX int64
	for _, vars := range res.Outcomes {
		modelX = vars[0]
	}

	// Real execution with the public counter.
	var x int64
	var c counter.Counter
	sthreads.ForN(sthreads.Concurrent, n, func(i int) {
		c.Check(uint64(i))
		x = x*2 + int64(i)
		c.Increment(1)
	})
	if x != modelX {
		t.Fatalf("real execution x=%d, model x=%d", x, modelX)
	}
}

// TestParaffinsAcrossImplsAndModes: the full enumerator is insensitive to
// counter implementation and execution mode (every combination).
func TestParaffinsAcrossImplsAndModes(t *testing.T) {
	want := paraffins.GenerateRadicalsSeq(8)
	for _, impl := range core.Impls {
		for _, mode := range sthreads.Modes {
			got := paraffins.GenerateRadicals(8, mode, impl)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("impl=%s mode=%v diverged", impl, mode)
			}
		}
	}
}

// TestTracedCounterInsideStencil: the trace wrapper is transparent to a
// real workload and reports plausible statistics.
func TestTracedCounterInsideStencil(t *testing.T) {
	// Reuse the broadcast pattern with a traced counter via the core
	// interface: writer + reader over 100 items.
	const items = 100
	inner := core.New()
	data := make([]int, items)
	done := make(chan int64, 1)
	go func() {
		var sum int64
		for i := 0; i < items; i++ {
			inner.Check(uint64(i) + 1)
			sum += int64(data[i])
		}
		done <- sum
	}()
	for i := 0; i < items; i++ {
		data[i] = i
		workload.Spin(200)
		inner.Increment(1)
	}
	sum := <-done
	if sum != items*(items-1)/2 {
		t.Fatalf("sum = %d", sum)
	}
}
