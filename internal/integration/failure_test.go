package integration_test

import (
	"testing"
	"time"

	"monotonic/counter"
	"monotonic/internal/core"
	"monotonic/internal/sthreads"
)

// Failure injection: what happens to counter-synchronized programs when a
// participant dies. Counters have no notion of abandonment (the paper's
// model has no thread failure), so a dead publisher means dependents wait
// forever — these tests pin the documented behaviour: bounded waits
// observe the loss, the counter itself stays consistent and reusable, and
// panic propagation works through the structured constructs.

func TestPanickedPublisherLeavesCounterConsistent(t *testing.T) {
	var c counter.Counter
	sawPanic := false
	func() {
		defer func() { sawPanic = recover() != nil }()
		sthreads.Block(sthreads.Concurrent,
			func() {
				c.Increment(1)
				panic("publisher died before second increment")
			},
			func() {
				// The first increment arrives; the second never does.
				c.Check(1)
				if c.WaitTimeout(2, 100*time.Millisecond) {
					t.Error("level 2 reported reached; nobody published it")
				}
			},
		)
	}()
	if !sawPanic {
		t.Fatal("publisher panic not propagated through Block")
	}
	// The counter survived: its value reflects the increments that did
	// happen, and it remains fully usable.
	if !c.WaitTimeout(1, time.Second) {
		t.Fatal("counter lost its value after a participant panicked")
	}
	c.Increment(1)
	if !c.WaitTimeout(2, time.Second) {
		t.Fatal("counter unusable after a participant panicked")
	}
}

func TestDeadPublisherObservedByTimeout(t *testing.T) {
	// A reader paced by WaitTimeout can distinguish "slow" from "dead":
	// the paper's Check cannot, by design (no probe), so cancellation
	// is the library extension that handles failure.
	var c counter.Counter
	progress := 0
	sthreads.Block(sthreads.Concurrent,
		func() {
			c.Increment(3) // publishes items 0..2, then silently stops
		},
		func() {
			for i := 0; i < 10; i++ {
				if !c.WaitTimeout(uint64(i)+1, 150*time.Millisecond) {
					return // observed the stall; give up cleanly
				}
				progress++
			}
		},
	)
	if progress != 3 {
		t.Fatalf("reader consumed %d items, want exactly the 3 published", progress)
	}
}

func TestPanicInForDoesNotCorruptSiblingResults(t *testing.T) {
	results := make([]int, 8)
	var c core.Counter
	func() {
		defer func() { recover() }()
		sthreads.ForN(sthreads.Concurrent, 8, func(i int) {
			if i == 3 {
				panic("thread 3 died")
			}
			c.Check(0)
			results[i] = i * i
			c.Increment(1)
		})
	}()
	for i, v := range results {
		if i == 3 {
			continue
		}
		if v != i*i {
			t.Errorf("sibling %d result corrupted: %d", i, v)
		}
	}
	if got := c.Value(); got != 7 {
		t.Fatalf("counter value %d, want 7 (all but the dead thread)", got)
	}
}
