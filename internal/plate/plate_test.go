package plate

import (
	"testing"
	"testing/quick"

	"monotonic/internal/workload"
)

func TestGridBasics(t *testing.T) {
	g := NewGrid(3, 4)
	g.Set(1, 2, 7.5)
	if g.At(1, 2) != 7.5 {
		t.Fatal("Set/At broken")
	}
	c := g.Clone()
	c.Set(0, 0, 1)
	if g.At(0, 0) == 1 {
		t.Fatal("Clone shares storage")
	}
	if g.Equal(NewGrid(4, 3)) {
		t.Fatal("different shapes equal")
	}
	if !g.Equal(g.Clone()) {
		t.Fatal("clone not equal")
	}
}

func TestHotEdgesFixture(t *testing.T) {
	g := HotEdges(4, 5)
	if g.At(0, 3) != 100 || g.At(2, 0) != 50 {
		t.Fatal("fixture edges wrong")
	}
	if g.At(2, 2) != 0 {
		t.Fatal("fixture interior nonzero")
	}
}

func TestSequentialBoundaryFixed(t *testing.T) {
	g := RunSequential(HotEdges(8, 8), 100, Heat)
	for j := 0; j < 8; j++ {
		if g.At(0, j) != 100 {
			t.Fatal("top edge changed")
		}
	}
	for i := 1; i < 8; i++ {
		if g.At(i, 0) != 50 {
			t.Fatal("left edge changed")
		}
	}
}

func TestZeroStepsIdentity(t *testing.T) {
	init := HotEdges(6, 7)
	if !RunSequential(init, 0, Heat).Equal(init) {
		t.Fatal("sequential zero steps changed grid")
	}
	if !RunBarrier(init, 0, 2, 2, Heat, nil).Equal(init) {
		t.Fatal("barrier zero steps changed grid")
	}
	if !RunCounter(init, 0, 2, 2, Heat, nil).Equal(init) {
		t.Fatal("counter zero steps changed grid")
	}
}

func TestNoInteriorIsNoOp(t *testing.T) {
	for _, dims := range [][2]int{{2, 5}, {5, 2}, {1, 1}, {2, 2}} {
		init := HotEdges(dims[0], dims[1])
		if !RunCounter(init, 5, 2, 2, Heat, nil).Equal(init) {
			t.Fatalf("%v: interior-free plate changed", dims)
		}
	}
}

// TestParallelMatchesSequential is the headline: both parallel variants
// are bit-identical to the oracle across tile shapes.
func TestParallelMatchesSequential(t *testing.T) {
	for _, dims := range [][2]int{{5, 5}, {8, 6}, {12, 12}, {9, 17}} {
		init := HotEdges(dims[0], dims[1])
		for _, steps := range []int{1, 2, 9} {
			want := RunSequential(init, steps, Heat)
			for _, tiles := range [][2]int{{1, 1}, {1, 3}, {2, 2}, {3, 2}, {4, 4}} {
				if got := RunBarrier(init, steps, tiles[0], tiles[1], Heat, nil); !got.Equal(want) {
					t.Errorf("dims=%v steps=%d tiles=%v: barrier diverged", dims, steps, tiles)
				}
				if got := RunCounter(init, steps, tiles[0], tiles[1], Heat, nil); !got.Equal(want) {
					t.Errorf("dims=%v steps=%d tiles=%v: counter diverged", dims, steps, tiles)
				}
			}
		}
	}
}

func TestSkewDoesNotChangeResults(t *testing.T) {
	init := HotEdges(10, 10)
	want := RunSequential(init, 6, Heat)
	for _, sk := range []workload.Skew{workload.OneSlow{Max: 5}, workload.Alternating{Max: 3}} {
		if got := RunCounter(init, 6, 2, 3, Heat, sk); !got.Equal(want) {
			t.Errorf("skew %s: counter diverged", sk.Name())
		}
		if got := RunBarrier(init, 6, 2, 3, Heat, sk); !got.Equal(want) {
			t.Errorf("skew %s: barrier diverged", sk.Name())
		}
	}
}

func TestTileClamping(t *testing.T) {
	init := HotEdges(5, 5) // 3x3 interior
	want := RunSequential(init, 4, Heat)
	if got := RunCounter(init, 4, 10, 10, Heat, nil); !got.Equal(want) {
		t.Fatal("clamped tiling diverged")
	}
	if got := RunCounter(init, 4, 0, -1, Heat, nil); !got.Equal(want) {
		t.Fatal("degenerate tile params diverged")
	}
}

// TestQuickRandomPlates: property test over random initial fields and
// tilings.
func TestQuickRandomPlates(t *testing.T) {
	avg := func(u, l, s, r, d float64) float64 { return (u + l + s + r + d) / 5 }
	f := func(seed uint64, r8, c8, tr8, tc8, st8 uint8) bool {
		rows := int(r8%12) + 3
		cols := int(c8%12) + 3
		tr := int(tr8%4) + 1
		tc := int(tc8%4) + 1
		steps := int(st8%6) + 1
		rng := workload.NewRNG(seed)
		init := NewGrid(rows, cols)
		for i := range init.Cells {
			init.Cells[i] = rng.Float64() * 100
		}
		want := RunSequential(init, steps, avg)
		return RunCounter(init, steps, tr, tc, avg, nil).Equal(want) &&
			RunBarrier(init, steps, tr, tc, avg, nil).Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
