// Package plate extends the paper's section 5.1 ragged barrier to two
// dimensions: a time-stepped simulation of a rectangular plate whose
// interior cell (i,j) at time t is a function of its four neighbours and
// itself at time t-1 (five-point stencil), with fixed boundary cells.
// "Similar boundary exchange requirements occur in most multithreaded
// simulations of physical systems in one or more dimensions" (paper,
// section 5.1).
//
// The plate is decomposed into a grid of tiles, one thread and one
// counter per tile. A tile's counter reaching 2t-1 means the tile has
// read all four neighbouring halos for step t; 2t means it has written
// step t back. Each tile synchronizes with at most four neighbours —
// pairwise, never globally — so the protocol is the paper's exactly,
// lifted to a 2-D neighbourhood.
package plate

import (
	"monotonic/internal/core"
	"monotonic/internal/sthreads"
	"monotonic/internal/sync2"
	"monotonic/internal/workload"
)

// UpdateFunc computes a cell from its four neighbours and itself.
type UpdateFunc func(up, left, self, right, down float64) float64

// Heat is five-point explicit heat diffusion.
func Heat(up, left, self, right, down float64) float64 {
	return self + 0.125*(up+left+right+down-4*self)
}

// Grid is a rows x cols field stored row-major.
type Grid struct {
	Rows, Cols int
	Cells      []float64
}

// NewGrid returns a zeroed grid.
func NewGrid(rows, cols int) *Grid {
	return &Grid{Rows: rows, Cols: cols, Cells: make([]float64, rows*cols)}
}

// At returns the value at (i, j).
func (g *Grid) At(i, j int) float64 { return g.Cells[i*g.Cols+j] }

// Set stores v at (i, j).
func (g *Grid) Set(i, j int, v float64) { g.Cells[i*g.Cols+j] = v }

// Clone deep-copies the grid.
func (g *Grid) Clone() *Grid {
	out := NewGrid(g.Rows, g.Cols)
	copy(out.Cells, g.Cells)
	return out
}

// Equal reports cell-exact equality.
func (g *Grid) Equal(o *Grid) bool {
	if g.Rows != o.Rows || g.Cols != o.Cols {
		return false
	}
	for i, v := range g.Cells {
		if o.Cells[i] != v {
			return false
		}
	}
	return true
}

// HotEdges returns the canonical fixture: a rows x cols plate at zero
// with the top edge at 100 and the left edge at 50.
func HotEdges(rows, cols int) *Grid {
	g := NewGrid(rows, cols)
	for j := 0; j < cols; j++ {
		g.Set(0, j, 100)
	}
	for i := 1; i < rows; i++ {
		g.Set(i, 0, 50)
	}
	return g
}

// RunSequential advances the plate numSteps steps double-buffered; the
// oracle for the parallel variants (cell updates are independent, so the
// result is bit-identical regardless of evaluation order).
func RunSequential(initial *Grid, numSteps int, f UpdateFunc) *Grid {
	cur := initial.Clone()
	next := initial.Clone()
	for t := 0; t < numSteps; t++ {
		for i := 1; i < cur.Rows-1; i++ {
			for j := 1; j < cur.Cols-1; j++ {
				next.Set(i, j, f(cur.At(i-1, j), cur.At(i, j-1), cur.At(i, j), cur.At(i, j+1), cur.At(i+1, j)))
			}
		}
		cur, next = next, cur
	}
	return cur
}

// tiling describes the tile decomposition of the interior.
type tiling struct {
	tr, tc int // tile grid dimensions
	rows   int // interior rows
	cols   int // interior cols
}

func (t tiling) rowBounds(ti int) (lo, hi int) {
	return 1 + ti*t.rows/t.tr, 1 + (ti+1)*t.rows/t.tr
}

func (t tiling) colBounds(tj int) (lo, hi int) {
	return 1 + tj*t.cols/t.tc, 1 + (tj+1)*t.cols/t.tc
}

// RunBarrier is the traditional variant: all tiles cross a global
// barrier between computing a step into private buffers and writing it
// back.
func RunBarrier(initial *Grid, numSteps, tileRows, tileCols int, f UpdateFunc, skew workload.Skew) *Grid {
	g := initial.Clone()
	til, ok := makeTiling(g, tileRows, tileCols)
	if !ok || numSteps == 0 {
		return g
	}
	b := sync2.NewBarrier(til.tr * til.tc)
	sthreads.ForN(sthreads.Concurrent, til.tr*til.tc, func(tid int) {
		ti, tj := tid/til.tc, tid%til.tc
		rlo, rhi := til.rowBounds(ti)
		clo, chi := til.colBounds(tj)
		buf := make([]float64, (rhi-rlo)*(chi-clo))
		for s := 0; s < numSteps; s++ {
			k := 0
			for i := rlo; i < rhi; i++ {
				for j := clo; j < chi; j++ {
					buf[k] = f(g.At(i-1, j), g.At(i, j-1), g.At(i, j), g.At(i, j+1), g.At(i+1, j))
					k++
				}
			}
			if skew != nil {
				workload.SpinSkewed(skew, tid, til.tr*til.tc, 300)
			}
			b.Pass()
			k = 0
			for i := rlo; i < rhi; i++ {
				for j := clo; j < chi; j++ {
					g.Set(i, j, buf[k])
					k++
				}
			}
			b.Pass()
		}
	})
	return g
}

// RunCounter is the ragged variant: one counter per tile, the paper's
// two-phase protocol against the (up to) four neighbouring tiles.
// Off-plate neighbours are represented by pre-satisfied virtual counters,
// exactly like the paper's boundary counters.
func RunCounter(initial *Grid, numSteps, tileRows, tileCols int, f UpdateFunc, skew workload.Skew) *Grid {
	g := initial.Clone()
	til, ok := makeTiling(g, tileRows, tileCols)
	if !ok || numSteps == 0 {
		return g
	}
	nTiles := til.tr * til.tc
	counters := make([]*core.Counter, nTiles)
	for i := range counters {
		counters[i] = core.New()
	}
	virtual := core.New()
	virtual.Increment(uint64(2 * numSteps))
	// neighbour returns tile (ti,tj)'s counter or the pre-satisfied
	// virtual counter if off-grid.
	neighbour := func(ti, tj int) *core.Counter {
		if ti < 0 || ti >= til.tr || tj < 0 || tj >= til.tc {
			return virtual
		}
		return counters[ti*til.tc+tj]
	}
	sthreads.ForN(sthreads.Concurrent, nTiles, func(tid int) {
		ti, tj := tid/til.tc, tid%til.tc
		rlo, rhi := til.rowBounds(ti)
		clo, chi := til.colBounds(tj)
		me := counters[tid]
		nbrs := []*core.Counter{
			neighbour(ti-1, tj), neighbour(ti+1, tj),
			neighbour(ti, tj-1), neighbour(ti, tj+1),
		}
		h, w := rhi-rlo, chi-clo
		buf := make([]float64, h*w)
		// Halo copies: the four border strips of neighbouring tiles.
		up := make([]float64, w)
		down := make([]float64, w)
		left := make([]float64, h)
		right := make([]float64, h)
		for s := 1; s <= numSteps; s++ {
			ss := uint64(s)
			// Phase 1: read halos once every neighbour finished s-1.
			for _, nb := range nbrs {
				nb.Check(2*ss - 2)
			}
			for j := clo; j < chi; j++ {
				up[j-clo] = g.At(rlo-1, j)
				down[j-clo] = g.At(rhi, j)
			}
			for i := rlo; i < rhi; i++ {
				left[i-rlo] = g.At(i, clo-1)
				right[i-rlo] = g.At(i, chi)
			}
			me.Increment(1) // halos read; neighbours may overwrite their edges
			// Compute from owned cells plus the saved halos.
			k := 0
			for i := rlo; i < rhi; i++ {
				for j := clo; j < chi; j++ {
					u := up[j-clo]
					if i > rlo {
						u = g.At(i-1, j)
					}
					d := down[j-clo]
					if i < rhi-1 {
						d = g.At(i+1, j)
					}
					l := left[i-rlo]
					if j > clo {
						l = g.At(i, j-1)
					}
					r := right[i-rlo]
					if j < chi-1 {
						r = g.At(i, j+1)
					}
					buf[k] = f(u, l, g.At(i, j), r, d)
					k++
				}
			}
			if skew != nil {
				workload.SpinSkewed(skew, tid, nTiles, 300)
			}
			// Phase 2: write back once every neighbour has read our
			// edges for step s.
			for _, nb := range nbrs {
				nb.Check(2*ss - 1)
			}
			k = 0
			for i := rlo; i < rhi; i++ {
				for j := clo; j < chi; j++ {
					g.Set(i, j, buf[k])
					k++
				}
			}
			me.Increment(1) // step s published
		}
	})
	return g
}

// makeTiling clamps the tile grid to the interior size and reports
// whether there is any interior to simulate.
func makeTiling(g *Grid, tileRows, tileCols int) (tiling, bool) {
	rows, cols := g.Rows-2, g.Cols-2
	if rows <= 0 || cols <= 0 {
		return tiling{}, false
	}
	if tileRows < 1 {
		tileRows = 1
	}
	if tileCols < 1 {
		tileCols = 1
	}
	if tileRows > rows {
		tileRows = rows
	}
	if tileCols > cols {
		tileCols = cols
	}
	return tiling{tr: tileRows, tc: tileCols, rows: rows, cols: cols}, true
}
