// Package sched is a deterministic cooperative scheduler for testing real
// Go closures under controlled thread interleavings: the executable
// complement to internal/explore's model checker. Bodies run as virtual
// threads whose only preemption points are synchronization operations
// (and explicit Yields); the scheduler picks which runnable thread
// proceeds using a seeded RNG, so a seed identifies a schedule exactly —
// run the same seed, get the same interleaving, byte for byte.
//
// Synchronization objects (Counter, Mutex) are provided by the scheduler
// itself with the same semantics as the real library: a Check suspends
// the virtual thread until the counter reaches the level, an Increment
// wakes every satisfied waiter. Because blocking is visible to the
// scheduler, deadlocks are detected exactly (no runnable thread, some
// thread blocked) instead of hanging the test.
//
// This is how the paper's section 6 development methodology looks as a
// tool: run a counter program under a thousand seeds and observe a single
// outcome; run the lock version and watch the outcome set grow.
package sched

import (
	"fmt"
	"sort"

	"monotonic/internal/workload"
)

// T is a virtual thread's handle; bodies receive it and must use it for
// every synchronization operation.
type T struct {
	s  *Scheduler
	id int

	resume chan struct{} // scheduler -> thread: proceed
	pause  chan struct{} // thread -> scheduler: I stopped (yield/block/finish)
	kill   chan struct{} // closed at run end: parked threads unwind and exit

	blocked  func() bool // non-nil while blocked: reports whether now runnable
	done     bool
	panicVal any // non-nil if the body panicked; re-raised by Run
}

// killed is the panic value used to unwind virtual threads still parked
// when a run ends (deadlocked threads); their deferred functions run, the
// goroutine exits, and nothing leaks.
type killed struct{}

// ID returns the virtual thread's index.
func (t *T) ID() int { return t.id }

// Yield is an explicit preemption point.
func (t *T) Yield() {
	t.s.yield(t, nil)
}

// Scheduler drives one run.
type Scheduler struct {
	rng     *workload.RNG
	threads []*T
	trace   []int
}

// Outcome describes one completed run.
type Outcome struct {
	// Deadlock reports that some thread remained blocked with no
	// runnable thread left.
	Deadlock bool
	// BlockedThreads lists the stuck thread ids when Deadlock is true.
	BlockedThreads []int
	// Trace is the schedule taken: the thread id chosen at each
	// scheduling decision.
	Trace []int
}

// Run executes the bodies as virtual threads under the schedule derived
// from seed. It returns after every thread finishes or a deadlock is
// detected. Bodies communicate only through scheduler sync objects and
// plain shared memory (safe: exactly one virtual thread runs at a time).
func Run(seed uint64, bodies ...func(t *T)) Outcome {
	s := &Scheduler{rng: workload.NewRNG(seed)}
	for i, body := range bodies {
		t := &T{
			s:      s,
			id:     i,
			resume: make(chan struct{}),
			pause:  make(chan struct{}),
			kill:   make(chan struct{}),
		}
		s.threads = append(s.threads, t)
		go func(t *T, body func(*T)) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(killed); ok {
						return // unwound at run end; exit silently
					}
					// Propagate the body's panic to Run's caller
					// through the scheduler handshake.
					t.panicVal = r
					t.done = true
					t.pause <- struct{}{}
				}
			}()
			select {
			case <-t.resume: // first scheduling
			case <-t.kill:
				return
			}
			body(t)
			t.done = true
			t.pause <- struct{}{}
		}(t, body)
	}
	out := s.loop()
	for _, t := range s.threads {
		close(t.kill)
	}
	for _, t := range s.threads {
		if t.panicVal != nil {
			panic(t.panicVal)
		}
	}
	return out
}

// loop repeatedly picks a runnable thread and lets it run to its next
// preemption point.
func (s *Scheduler) loop() Outcome {
	for {
		runnable := s.runnable()
		if len(runnable) == 0 {
			var blockedIDs []int
			for _, t := range s.threads {
				if !t.done {
					blockedIDs = append(blockedIDs, t.id)
				}
			}
			sort.Ints(blockedIDs)
			return Outcome{
				Deadlock:       len(blockedIDs) > 0,
				BlockedThreads: blockedIDs,
				Trace:          s.trace,
			}
		}
		t := runnable[s.rng.Intn(len(runnable))]
		s.trace = append(s.trace, t.id)
		t.blocked = nil
		t.resume <- struct{}{}
		<-t.pause
	}
}

// runnable returns the threads that can take a step.
func (s *Scheduler) runnable() []*T {
	var out []*T
	for _, t := range s.threads {
		if t.done {
			continue
		}
		if t.blocked != nil && !t.blocked() {
			continue
		}
		out = append(out, t)
	}
	return out
}

// yield hands control back to the scheduler; cond, if non-nil, blocks
// the thread until cond() is true. If the run ends while parked (a
// deadlock elsewhere), the thread unwinds via the killed panic.
func (s *Scheduler) yield(t *T, cond func() bool) {
	t.blocked = cond
	t.pause <- struct{}{}
	select {
	case <-t.resume:
	case <-t.kill:
		panic(killed{})
	}
}

// Counter is a monotonic counter with the library's semantics, realized
// on the scheduler: Increment is atomic (a virtual thread is never
// preempted inside it), and Check blocks the virtual thread until the
// value reaches the level.
type Counter struct {
	value uint64
}

// Increment adds amount (a single scheduler step; waiters become
// runnable immediately).
func (c *Counter) Increment(t *T, amount uint64) {
	c.value += amount
	t.Yield() // make the increment a visible scheduling point
}

// Check blocks the calling virtual thread until value >= level.
func (c *Counter) Check(t *T, level uint64) {
	if c.value >= level {
		t.Yield()
		return
	}
	t.s.yield(t, func() bool { return c.value >= level })
}

// Value reports the current value (for assertions after Run).
func (c *Counter) Value() uint64 { return c.value }

// Mutex is a scheduler-visible lock.
type Mutex struct {
	held bool
}

// Lock blocks the virtual thread until the mutex is free, then takes it.
func (m *Mutex) Lock(t *T) {
	if !m.held {
		m.held = true
		t.Yield()
		return
	}
	t.s.yield(t, func() bool { return !m.held })
	if m.held {
		panic("sched: mutex handed to a thread while held")
	}
	m.held = true
}

// Unlock releases the mutex. It panics if not held.
func (m *Mutex) Unlock(t *T) {
	if !m.held {
		panic("sched: Unlock of unheld mutex")
	}
	m.held = false
	t.Yield()
}

// World bundles a run's shared objects so tests can construct them before
// the bodies run. Use NewWorld, add objects, then World.Run.
type World struct {
	counters []*Counter
	mutexes  []*Mutex
}

// NewWorld returns an empty world.
func NewWorld() *World { return &World{} }

// Counter declares a counter; the returned index is passed to C during
// the run.
func (w *World) Counter() int {
	w.counters = append(w.counters, &Counter{})
	return len(w.counters) - 1
}

// Mutex declares a mutex.
func (w *World) Mutex() int {
	w.mutexes = append(w.mutexes, &Mutex{})
	return len(w.mutexes) - 1
}

// C returns counter i.
func (w *World) C(i int) *Counter { return w.counters[i] }

// M returns mutex i.
func (w *World) M(i int) *Mutex { return w.mutexes[i] }

// Run executes the bodies under the seed's schedule, resetting every
// declared object first so a World can be reused across seeds.
func (w *World) Run(seed uint64, bodies ...func(t *T)) Outcome {
	for _, c := range w.counters {
		c.value = 0
	}
	for _, m := range w.mutexes {
		m.held = false
	}
	return Run(seed, bodies...)
}

// String renders an outcome compactly.
func (o Outcome) String() string {
	if o.Deadlock {
		return fmt.Sprintf("deadlock(blocked=%v, trace=%v)", o.BlockedThreads, o.Trace)
	}
	return fmt.Sprintf("ok(trace=%v)", o.Trace)
}
