package sched

import (
	"testing"
)

// section6Counter runs the paper's deterministic counter program under
// one seed and returns the final x.
func section6Counter(seed uint64) (int, Outcome) {
	x := 3
	w := NewWorld()
	ci := w.Counter()
	out := w.Run(seed,
		func(t *T) {
			w.C(ci).Check(t, 0)
			x = x + 1
			w.C(ci).Increment(t, 1)
		},
		func(t *T) {
			w.C(ci).Check(t, 1)
			x = x * 2
			w.C(ci).Increment(t, 1)
		},
	)
	return x, out
}

// TestCounterProgramSingleOutcomeAcrossSeeds: a thousand random
// schedules, one outcome — the section 6 determinacy claim on executable
// code.
func TestCounterProgramSingleOutcomeAcrossSeeds(t *testing.T) {
	for seed := uint64(0); seed < 1000; seed++ {
		x, out := section6Counter(seed)
		if out.Deadlock {
			t.Fatalf("seed %d: deadlock %v", seed, out)
		}
		if x != 8 {
			t.Fatalf("seed %d: x = %d, want 8 (schedule %v)", seed, x, out.Trace)
		}
	}
}

// TestLockProgramBothOutcomesAppear: the lock version reaches both 7 and
// 8 across seeds.
func TestLockProgramBothOutcomesAppear(t *testing.T) {
	seen := map[int]bool{}
	w := NewWorld()
	mi := w.Mutex()
	for seed := uint64(0); seed < 200 && len(seen) < 2; seed++ {
		x := 3
		out := w.Run(seed,
			func(t *T) {
				w.M(mi).Lock(t)
				x = x + 1
				w.M(mi).Unlock(t)
			},
			func(t *T) {
				w.M(mi).Lock(t)
				x = x * 2
				w.M(mi).Unlock(t)
			},
		)
		if out.Deadlock {
			t.Fatalf("seed %d: deadlock", seed)
		}
		seen[x] = true
	}
	if !seen[7] || !seen[8] {
		t.Fatalf("outcomes seen: %v, want both 7 and 8", seen)
	}
}

// TestDeterministicReplay: the same seed gives the same trace and result.
func TestDeterministicReplay(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		x1, o1 := section6Counter(seed)
		x2, o2 := section6Counter(seed)
		if x1 != x2 {
			t.Fatalf("seed %d: results differ", seed)
		}
		if len(o1.Trace) != len(o2.Trace) {
			t.Fatalf("seed %d: trace lengths differ", seed)
		}
		for i := range o1.Trace {
			if o1.Trace[i] != o2.Trace[i] {
				t.Fatalf("seed %d: traces differ at step %d", seed, i)
			}
		}
	}
}

// TestSeedsProduceDifferentSchedules: schedules actually vary with the
// seed (the fuzzing is not vacuous).
func TestSeedsProduceDifferentSchedules(t *testing.T) {
	traces := map[string]bool{}
	for seed := uint64(0); seed < 50; seed++ {
		_, out := section6Counter(seed)
		key := ""
		for _, id := range out.Trace {
			key += string(rune('0' + id))
		}
		traces[key] = true
	}
	if len(traces) < 2 {
		t.Fatalf("50 seeds produced %d distinct schedules", len(traces))
	}
}

// TestDeadlockDetected: cyclic counter waiting is reported, with the
// blocked thread set, instead of hanging.
func TestDeadlockDetected(t *testing.T) {
	w := NewWorld()
	a, b := w.Counter(), w.Counter()
	out := w.Run(7,
		func(t *T) {
			w.C(a).Check(t, 1)
			w.C(b).Increment(t, 1)
		},
		func(t *T) {
			w.C(b).Check(t, 1)
			w.C(a).Increment(t, 1)
		},
	)
	if !out.Deadlock {
		t.Fatal("cyclic wait not reported as deadlock")
	}
	if len(out.BlockedThreads) != 2 {
		t.Fatalf("blocked threads %v, want both", out.BlockedThreads)
	}
}

// TestPartialDeadlock: one thread finishing while another is stuck is
// still a deadlock with the right blocked set.
func TestPartialDeadlock(t *testing.T) {
	w := NewWorld()
	c := w.Counter()
	out := w.Run(3,
		func(t *T) { w.C(c).Check(t, 5) }, // nobody will provide 5
		func(t *T) { w.C(c).Increment(t, 1) },
	)
	if !out.Deadlock {
		t.Fatal("stuck checker not reported")
	}
	if len(out.BlockedThreads) != 1 || out.BlockedThreads[0] != 0 {
		t.Fatalf("blocked = %v, want [0]", out.BlockedThreads)
	}
}

// TestMutexMutualExclusionUnderAllSeeds: a critical-section counter is
// never corrupted whatever the schedule.
func TestMutexMutualExclusionUnderAllSeeds(t *testing.T) {
	w := NewWorld()
	mi := w.Mutex()
	for seed := uint64(0); seed < 100; seed++ {
		shared := 0
		inc := func(t *T) {
			for i := 0; i < 5; i++ {
				w.M(mi).Lock(t)
				v := shared
				t.Yield() // tempt the scheduler to interleave here
				shared = v + 1
				w.M(mi).Unlock(t)
			}
		}
		out := w.Run(seed, inc, inc, inc)
		if out.Deadlock {
			t.Fatalf("seed %d: deadlock", seed)
		}
		if shared != 15 {
			t.Fatalf("seed %d: shared = %d, want 15 (lost update)", seed, shared)
		}
	}
}

// TestWithoutMutexUpdatesAreLost: the same program without the lock
// loses updates under some schedule — the harness can actually produce
// the bug.
func TestWithoutMutexUpdatesAreLost(t *testing.T) {
	lost := false
	for seed := uint64(0); seed < 300 && !lost; seed++ {
		shared := 0
		inc := func(t *T) {
			for i := 0; i < 3; i++ {
				v := shared
				t.Yield()
				shared = v + 1
			}
		}
		out := Run(seed, inc, inc)
		if out.Deadlock {
			t.Fatalf("seed %d: deadlock", seed)
		}
		if shared != 6 {
			lost = true
		}
	}
	if !lost {
		t.Fatal("no schedule exhibited the lost update in 300 seeds")
	}
}

// TestBroadcastOnScheduler: the section 5.3 pattern under many seeds.
func TestBroadcastOnScheduler(t *testing.T) {
	const items = 6
	w := NewWorld()
	ci := w.Counter()
	for seed := uint64(0); seed < 200; seed++ {
		data := make([]int, items)
		sums := make([]int, 2)
		reader := func(r int) func(*T) {
			return func(t *T) {
				for i := 0; i < items; i++ {
					w.C(ci).Check(t, uint64(i)+1)
					sums[r] += data[i]
				}
			}
		}
		out := w.Run(seed,
			func(t *T) {
				for i := 0; i < items; i++ {
					data[i] = i + 1
					w.C(ci).Increment(t, 1)
				}
			},
			reader(0), reader(1),
		)
		if out.Deadlock {
			t.Fatalf("seed %d: deadlock", seed)
		}
		if sums[0] != 21 || sums[1] != 21 {
			t.Fatalf("seed %d: sums = %v", seed, sums)
		}
	}
}

func TestMutexUnlockUnheldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock of unheld mutex did not panic")
		}
	}()
	var m Mutex
	w := NewWorld()
	_ = w
	Run(1, func(t *T) { m.Unlock(t) })
}

func TestOutcomeString(t *testing.T) {
	o := Outcome{Deadlock: true, BlockedThreads: []int{1}, Trace: []int{0, 1}}
	if o.String() != "deadlock(blocked=[1], trace=[0 1])" {
		t.Fatalf("String = %q", o.String())
	}
	o = Outcome{Trace: []int{0}}
	if o.String() != "ok(trace=[0])" {
		t.Fatalf("String = %q", o.String())
	}
}
