// Package workload provides deterministic workload generation for the
// experiments: a seedable PRNG (splitmix64), per-thread load-skew profiles
// that model the processor load imbalance the paper's ragged barriers
// exploit, and small synthetic compute kernels with tunable cost.
package workload

import (
	"math"
	"runtime"
)

// RNG is a splitmix64 pseudo-random generator: tiny, fast, and fully
// deterministic from its seed, so every experiment is reproducible without
// depending on math/rand's global state.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next value in the splitmix64 sequence.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn requires n > 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n), Fisher-Yates shuffled.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Skew describes per-thread load imbalance: thread t's work units cost
// Factor(t) times the baseline. The paper's argument for ragged barriers
// (sections 4 and 5.1) is that under skew, barrier programs serialize on
// the slowest thread each step while counter programs let fast threads run
// ahead.
type Skew interface {
	// Factor returns the cost multiplier for thread t of n.
	Factor(t, n int) float64
	// Name identifies the profile in experiment tables.
	Name() string
}

// Uniform is no skew: every thread costs the same.
type Uniform struct{}

// Factor implements Skew.
func (Uniform) Factor(t, n int) float64 { return 1 }

// Name implements Skew.
func (Uniform) Name() string { return "uniform" }

// Linear skews linearly: thread 0 costs 1x, thread n-1 costs Max x.
type Linear struct{ Max float64 }

// Factor implements Skew.
func (s Linear) Factor(t, n int) float64 {
	if n <= 1 {
		return 1
	}
	return 1 + (s.Max-1)*float64(t)/float64(n-1)
}

// Name implements Skew.
func (s Linear) Name() string { return "linear" }

// OneSlow makes a single thread cost Max x and all others 1x — the
// straggler pattern where ragged barriers help most.
type OneSlow struct{ Max float64 }

// Factor implements Skew.
func (s OneSlow) Factor(t, n int) float64 {
	if t == n-1 {
		return s.Max
	}
	return 1
}

// Name implements Skew.
func (s OneSlow) Name() string { return "one-slow" }

// Alternating skews even threads 1x and odd threads Max x.
type Alternating struct{ Max float64 }

// Factor implements Skew.
func (s Alternating) Factor(t, n int) float64 {
	if t%2 == 1 {
		return s.Max
	}
	return 1
}

// Name implements Skew.
func (s Alternating) Name() string { return "alternating" }

// Yield cedes the processor n times. On a single-P runtime (GOMAXPROCS=1)
// pure spinning never deschedules a goroutine, so experiments that need
// arrival-order variation must yield explicitly; Yield(rng.Intn(k)) gives
// each thread a random number of scheduling points.
func Yield(n int) {
	for i := 0; i < n; i++ {
		runtime.Gosched()
	}
}

// Spin burns roughly `units` abstract units of CPU on arithmetic the
// compiler cannot elide, and returns a checksum (so callers can consume
// the result). One unit is a handful of floating-point operations.
func Spin(units int) float64 {
	x := 1.000001
	for i := 0; i < units; i++ {
		x = x*1.0000001 + 0.0000001
		if x > 2 {
			x = math.Sqrt(x)
		}
	}
	return x
}

// SpinSkewed burns baseUnits scaled by the skew factor for thread t of n.
func SpinSkewed(s Skew, t, n, baseUnits int) float64 {
	return Spin(int(float64(baseUnits) * s.Factor(t, n)))
}
