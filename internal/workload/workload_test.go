package workload

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d", v)
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8%64) + 1
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSkewProfiles(t *testing.T) {
	const n = 8
	cases := []struct {
		s    Skew
		t0   float64 // factor for thread 0
		tEnd float64 // factor for thread n-1
	}{
		{Uniform{}, 1, 1},
		{Linear{Max: 4}, 1, 4},
		{OneSlow{Max: 10}, 1, 10},
		{Alternating{Max: 3}, 1, 3},
	}
	for _, c := range cases {
		if got := c.s.Factor(0, n); got != c.t0 {
			t.Errorf("%s.Factor(0,%d) = %v, want %v", c.s.Name(), n, got, c.t0)
		}
		if got := c.s.Factor(n-1, n); got != c.tEnd {
			t.Errorf("%s.Factor(%d,%d) = %v, want %v", c.s.Name(), n-1, n, got, c.tEnd)
		}
		for i := 0; i < n; i++ {
			if c.s.Factor(i, n) < 1 {
				t.Errorf("%s.Factor(%d,%d) < 1", c.s.Name(), i, n)
			}
		}
	}
}

func TestLinearSingleThread(t *testing.T) {
	if got := (Linear{Max: 5}).Factor(0, 1); got != 1 {
		t.Fatalf("Linear.Factor(0,1) = %v, want 1", got)
	}
}

func TestSpinConsumesWork(t *testing.T) {
	if Spin(0) != Spin(0) {
		t.Fatal("Spin not deterministic")
	}
	if Spin(1000) == 0 {
		t.Fatal("Spin returned zero checksum")
	}
	// SpinSkewed must scale with the factor without crashing at edges.
	_ = SpinSkewed(OneSlow{Max: 3}, 7, 8, 100)
	_ = SpinSkewed(Uniform{}, 0, 1, 0)
}

func TestSkewNames(t *testing.T) {
	names := map[string]Skew{
		"uniform":     Uniform{},
		"linear":      Linear{Max: 2},
		"one-slow":    OneSlow{Max: 2},
		"alternating": Alternating{Max: 2},
	}
	for want, s := range names {
		if got := s.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}

func TestYieldRuns(t *testing.T) {
	Yield(0)
	Yield(3) // must simply not hang or panic
}
