package linsys

import (
	"math"
	"testing"
	"testing/quick"

	"monotonic/internal/core"
	"monotonic/internal/workload"
)

func TestSolveSeqKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
	sys := System{
		A: [][]float64{{2, 1}, {1, 3}},
		B: []float64{5, 10},
	}
	x := SolveSeq(sys)
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v, want [1 3]", x)
	}
}

func TestSolveSeqIdentity(t *testing.T) {
	sys := System{
		A: [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}},
		B: []float64{4, -2, 7},
	}
	x := SolveSeq(sys)
	for i, want := range sys.B {
		if x[i] != want {
			t.Fatalf("x = %v", x)
		}
	}
}

func TestResidualSmallOnRandomSystems(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		sys := RandomDominant(40, seed)
		x := SolveSeq(sys)
		if r := Residual(sys, x); r > 1e-9 {
			t.Errorf("seed %d: residual %g", seed, r)
		}
	}
}

// TestParallelBitIdentical: both parallel eliminations produce the exact
// bits of the sequential solution — the determinacy property as numerical
// reproducibility.
func TestParallelBitIdentical(t *testing.T) {
	for _, n := range []int{1, 2, 5, 33, 64} {
		sys := RandomDominant(n, uint64(n)+100)
		want := SolveSeq(sys)
		for _, nt := range []int{1, 2, 3, 8} {
			if got := SolveBarrier(sys, nt, nil); !EqualExact(got, want) {
				t.Errorf("n=%d nt=%d: barrier solution differs", n, nt)
			}
			if got := SolveCounter(sys, nt, nil, ""); !EqualExact(got, want) {
				t.Errorf("n=%d nt=%d: counter solution differs", n, nt)
			}
		}
	}
}

func TestCounterSolveAllImpls(t *testing.T) {
	sys := RandomDominant(48, 3)
	want := SolveSeq(sys)
	for _, impl := range core.Impls {
		if got := SolveCounter(sys, 4, nil, impl); !EqualExact(got, want) {
			t.Errorf("impl %s: solution differs", impl)
		}
	}
}

func TestSkewDoesNotChangeSolution(t *testing.T) {
	sys := RandomDominant(32, 9)
	want := SolveSeq(sys)
	for _, sk := range []workload.Skew{workload.OneSlow{Max: 5}, workload.Linear{Max: 3}} {
		if got := SolveCounter(sys, 4, sk, ""); !EqualExact(got, want) {
			t.Errorf("skew %s: counter solution differs", sk.Name())
		}
		if got := SolveBarrier(sys, 4, sk); !EqualExact(got, want) {
			t.Errorf("skew %s: barrier solution differs", sk.Name())
		}
	}
}

func TestDegenerateSizes(t *testing.T) {
	if got := SolveCounter(System{}, 4, nil, ""); got != nil {
		t.Fatal("empty system returned a solution")
	}
	sys := System{A: [][]float64{{4}}, B: []float64{8}}
	if got := SolveCounter(sys, 7, nil, ""); len(got) != 1 || got[0] != 2 {
		t.Fatalf("1x1 solution %v", got)
	}
}

// TestQuickRandomSystems: property test — residual small and parallel
// bitwise-equal for random sizes, threads, and seeds.
func TestQuickRandomSystems(t *testing.T) {
	f := func(seed uint64, n8, nt8 uint8) bool {
		n := int(n8%40) + 1
		nt := int(nt8%6) + 1
		sys := RandomDominant(n, seed)
		want := SolveSeq(sys)
		if Residual(sys, want) > 1e-8 {
			return false
		}
		return EqualExact(SolveCounter(sys, nt, nil, ""), want) &&
			EqualExact(SolveBarrier(sys, nt, nil), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	sys := RandomDominant(5, 1)
	orig := sys.Clone()
	_ = SolveSeq(sys) // must not mutate its argument
	for i := range sys.A {
		for j := range sys.A[i] {
			if sys.A[i][j] != orig.A[i][j] {
				t.Fatal("SolveSeq mutated the input system")
			}
		}
		if sys.B[i] != orig.B[i] {
			t.Fatal("SolveSeq mutated the right-hand side")
		}
	}
}

func TestEqualExact(t *testing.T) {
	if !EqualExact([]float64{1, 2}, []float64{1, 2}) {
		t.Fatal("equal vectors reported unequal")
	}
	if EqualExact([]float64{1}, []float64{1, 2}) {
		t.Fatal("different lengths reported equal")
	}
	if EqualExact([]float64{1}, []float64{2}) {
		t.Fatal("different values reported equal")
	}
}
