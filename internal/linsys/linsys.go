// Package linsys implements dense linear-system solving by Gaussian
// elimination, parallelized with a single monotonic counter in the exact
// shape of the paper's ShortestPaths3 (section 4.5): threads own row
// blocks, iteration k is gated by Check(k) on the pivot counter, and the
// owner of row k+1 publishes it (into a staging area) and increments as
// soon as it has eliminated it — so fast threads run ahead of slow ones
// instead of meeting at a per-iteration barrier.
//
// Elimination is performed without pivoting; the generators produce
// strictly diagonally dominant systems, for which that is numerically
// stable. Because each row is updated only by its owner and always in
// ascending k order, the parallel elimination performs bit-for-bit the
// same floating-point operations as the sequential one — the results are
// identical, not merely close (the section 6 determinacy property showing
// up as numerical reproducibility).
package linsys

import (
	"math"

	"monotonic/internal/core"
	"monotonic/internal/sthreads"
	"monotonic/internal/sync2"
	"monotonic/internal/workload"
)

// System is a dense n x n system A x = b.
type System struct {
	A [][]float64
	B []float64
}

// N returns the system dimension.
func (s System) N() int { return len(s.B) }

// Clone deep-copies the system.
func (s System) Clone() System {
	n := s.N()
	out := System{A: make([][]float64, n), B: append([]float64(nil), s.B...)}
	for i := range s.A {
		out.A[i] = append([]float64(nil), s.A[i]...)
	}
	return out
}

// RandomDominant generates a strictly diagonally dominant system (hence
// nonsingular and safely eliminable without pivoting), deterministic from
// the seed.
func RandomDominant(n int, seed uint64) System {
	rng := workload.NewRNG(seed)
	sys := System{A: make([][]float64, n), B: make([]float64, n)}
	for i := 0; i < n; i++ {
		row := make([]float64, n)
		sum := 0.0
		for j := 0; j < n; j++ {
			if j != i {
				row[j] = rng.Float64()*2 - 1
				sum += math.Abs(row[j])
			}
		}
		row[i] = sum + 1 + rng.Float64()
		sys.A[i] = row
		sys.B[i] = rng.Float64()*10 - 5
	}
	return sys
}

// SolveSeq eliminates and back-substitutes sequentially; the oracle.
func SolveSeq(sys System) []float64 {
	w := sys.Clone()
	n := w.N()
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			eliminateRow(w.A[i], w.B, i, w.A[k], w.B[k], k)
		}
	}
	return backSubstitute(w)
}

// eliminateRow applies pivot row pk (with right-hand side bk) to row i.
func eliminateRow(row []float64, b []float64, i int, pk []float64, bk float64, k int) {
	factor := row[k] / pk[k]
	row[k] = 0
	for j := k + 1; j < len(row); j++ {
		row[j] -= factor * pk[j]
	}
	b[i] -= factor * bk
}

func backSubstitute(w System) []float64 {
	n := w.N()
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := w.B[i]
		for j := i + 1; j < n; j++ {
			sum -= w.A[i][j] * x[j]
		}
		x[i] = sum / w.A[i][i]
	}
	return x
}

// SolveBarrier eliminates with numThreads threads in lockstep: one
// barrier pass per pivot (the ShortestPaths2 structure).
func SolveBarrier(sys System, numThreads int, skew workload.Skew) []float64 {
	w := sys.Clone()
	n := w.N()
	if numThreads < 1 {
		numThreads = 1
	}
	if numThreads > n {
		numThreads = n
	}
	if n == 0 {
		return nil
	}
	b := sync2.NewBarrier(numThreads)
	sthreads.ForChunked(sthreads.Concurrent, n, numThreads, func(t, lo, hi int) {
		for k := 0; k < n; k++ {
			start := lo
			if k+1 > start {
				start = k + 1
			}
			for i := start; i < hi; i++ {
				eliminateRow(w.A[i], w.B, i, w.A[k], w.B[k], k)
			}
			if skew != nil {
				workload.SpinSkewed(skew, t, numThreads, 200)
			}
			b.Pass()
		}
	})
	return backSubstitute(w)
}

// SolveCounter eliminates with the section 4.5 dataflow: pivCount's value
// k means pivot rows 0..k are staged; the owner of row k+1 publishes it
// the moment it is eliminated. impl selects the counter implementation
// ("" = reference list).
func SolveCounter(sys System, numThreads int, skew workload.Skew, impl core.Impl) []float64 {
	w := sys.Clone()
	n := w.N()
	if numThreads < 1 {
		numThreads = 1
	}
	if numThreads > n {
		numThreads = n
	}
	if n == 0 {
		return nil
	}
	if impl == "" {
		impl = core.ImplList
	}
	pivCount := core.NewImpl(impl)
	pivA := make([][]float64, n)
	pivB := make([]float64, n)
	pivA[0] = append([]float64(nil), w.A[0]...)
	pivB[0] = w.B[0]
	sthreads.ForChunked(sthreads.Concurrent, n, numThreads, func(t, lo, hi int) {
		for k := 0; k < n; k++ {
			if k >= hi {
				// Every row this thread owns is already fully
				// eliminated; it will never publish or consume
				// further pivots.
				break
			}
			pivCount.Check(uint64(k))
			pk, bk := pivA[k], pivB[k]
			start := lo
			if k+1 > start {
				start = k + 1
			}
			for i := start; i < hi; i++ {
				eliminateRow(w.A[i], w.B, i, pk, bk, k)
				if i == k+1 {
					pivA[k+1] = append([]float64(nil), w.A[k+1]...)
					pivB[k+1] = w.B[k+1]
					pivCount.Increment(1)
				}
			}
			if skew != nil {
				workload.SpinSkewed(skew, t, numThreads, 200)
			}
		}
	})
	return backSubstitute(w)
}

// Residual returns the infinity norm of A x - b for the original system.
func Residual(sys System, x []float64) float64 {
	max := 0.0
	for i := range sys.A {
		sum := -sys.B[i]
		for j, a := range sys.A[i] {
			sum += a * x[j]
		}
		if r := math.Abs(sum); r > max {
			max = r
		}
	}
	return max
}

// EqualExact reports bitwise equality of two solution vectors — the
// determinacy property makes this the right comparison, not a tolerance.
func EqualExact(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
