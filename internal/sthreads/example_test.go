package sthreads_test

import (
	"fmt"
	"sync/atomic"

	"monotonic/internal/sthreads"
)

// A multithreaded for-loop joins before continuing; Sequential mode runs
// the same bodies in program order ("ignoring the multithreaded
// keyword").
func ExampleFor() {
	var sum atomic.Int64
	sthreads.For(sthreads.Concurrent, 0, 10, 1, func(i int) {
		sum.Add(int64(i))
	})
	fmt.Println("concurrent:", sum.Load())

	order := []int{}
	sthreads.For(sthreads.Sequential, 0, 4, 1, func(i int) {
		order = append(order, i)
	})
	fmt.Println("sequential:", order)
	// Output:
	// concurrent: 45
	// sequential: [0 1 2 3]
}

// A multithreaded block runs its statements as threads and joins.
func ExampleBlock() {
	var a, b atomic.Bool
	sthreads.Block(sthreads.Concurrent,
		func() { a.Store(true) },
		func() { b.Store(true) },
	)
	fmt.Println(a.Load(), b.Load())
	// Output: true true
}
