package sthreads

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForChunkedCoversRangeExactly(t *testing.T) {
	f := func(n8, chunks8 uint8) bool {
		n := int(n8 % 100)
		chunks := int(chunks8%12) + 1
		for _, mode := range Modes {
			covered := make([]int32, n)
			var mu sync.Mutex
			var seenChunks []int
			ForChunked(mode, n, chunks, func(chunk, lo, hi int) {
				mu.Lock()
				seenChunks = append(seenChunks, chunk)
				mu.Unlock()
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&covered[i], 1)
				}
			})
			if len(seenChunks) != chunks {
				return false
			}
			for _, c := range covered {
				if c != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestForChunkedBlocksAreContiguousAndOrdered(t *testing.T) {
	type rng struct{ lo, hi int }
	var mu sync.Mutex
	got := make([]rng, 5)
	ForChunked(Sequential, 23, 5, func(chunk, lo, hi int) {
		mu.Lock()
		got[chunk] = rng{lo, hi}
		mu.Unlock()
	})
	prev := 0
	for i, r := range got {
		if r.lo != prev {
			t.Fatalf("chunk %d starts at %d, want %d", i, r.lo, prev)
		}
		if r.hi < r.lo {
			t.Fatalf("chunk %d inverted: %+v", i, r)
		}
		prev = r.hi
	}
	if prev != 23 {
		t.Fatalf("chunks end at %d, want 23", prev)
	}
}

func TestForChunkedPanicsOnBadChunks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ForChunked with 0 chunks did not panic")
		}
	}()
	ForChunked(Concurrent, 10, 0, func(int, int, int) {})
}

func TestForLimitedRunsAll(t *testing.T) {
	var count atomic.Int64
	ForLimited(Concurrent, 100, 4, func(i int) { count.Add(1) })
	if count.Load() != 100 {
		t.Fatalf("ran %d bodies", count.Load())
	}
}

func TestForLimitedRespectsLimit(t *testing.T) {
	const limit = 3
	var inside, peak atomic.Int64
	ForLimited(Concurrent, 64, limit, func(i int) {
		cur := inside.Add(1)
		for {
			m := peak.Load()
			if cur <= m || peak.CompareAndSwap(m, cur) {
				break
			}
		}
		// Encourage overlap: yield so other bodies get a chance to
		// enter while this one is "working".
		for y := 0; y < 5; y++ {
			yieldNow()
		}
		inside.Add(-1)
	})
	if p := peak.Load(); p > limit {
		t.Fatalf("peak concurrency %d exceeds limit %d", p, limit)
	}
}

func TestForLimitedSequentialAndUnitLimit(t *testing.T) {
	var order []int
	ForLimited(Sequential, 5, 3, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order %v", order)
		}
	}
	order = nil
	ForLimited(Concurrent, 5, 1, func(i int) { order = append(order, i) })
	if len(order) != 5 {
		t.Fatalf("unit limit ran %d bodies", len(order))
	}
}

func TestForLimitedPanicsOnBadLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ForLimited with 0 limit did not panic")
		}
	}()
	ForLimited(Concurrent, 10, 0, func(int) {})
}
