// Package sthreads implements the structured multithreaded programming
// model the paper uses throughout (section 3): Dijkstra-style
// parbegin/parend blocks and quantified multithreaded for-loops, in the
// style of the authors' Sthreads system (Thornley, Chandy, Ishii, USENIX NT
// 1998) and CC++.
//
// Two constructs are provided:
//
//   - Block(fns...): run the statements of a multithreaded block as
//     asynchronous threads sharing the caller's address space; execution
//     does not continue past the block until all have terminated.
//   - For(lo, hi, step, body): run the iterations of a multithreaded
//     for-loop as asynchronous threads, each with its own copy of the
//     control variable; join before continuing.
//
// Both constructs take a Mode. Concurrent runs bodies on goroutines —
// ordinary multithreaded execution. Sequential executes the same bodies
// one after another in program order, which is precisely "execution
// ignoring the multithreaded keyword" from section 6 of the paper: the
// foundation of the sequential-equivalence experiments (E9). Programs
// synchronized only with counters and with guarded shared variables must
// produce identical results under both modes.
//
// Constructs nest arbitrarily, and panics in bodies propagate to the
// caller after all sibling threads terminate, preserving the
// single-entry/single-exit structure the notation requires.
package sthreads

import (
	"fmt"
	"runtime"
	"sync"
)

// Mode selects how a multithreaded construct executes its threads.
type Mode int

const (
	// Concurrent runs each statement or iteration on its own goroutine.
	Concurrent Mode = iota
	// Sequential runs statements/iterations in program order on the
	// calling goroutine — section 6's "execution ignoring the
	// multithreaded keyword".
	Sequential
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Concurrent:
		return "concurrent"
	case Sequential:
		return "sequential"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Modes lists both execution modes, for table-driven equivalence tests.
var Modes = []Mode{Sequential, Concurrent}

// panicError carries a body panic across the join so it can be re-panicked
// in the caller with context.
type panicError struct {
	index int
	value any
}

func (p panicError) Error() string {
	return fmt.Sprintf("sthreads: thread %d panicked: %v", p.index, p.value)
}

// Block executes fns as the statements of a multithreaded block and
// returns when every one has terminated. In Sequential mode the functions
// run in order on the calling goroutine. If any function panics, Block
// panics with the first (lowest-index) panic value after all functions
// have terminated.
func Block(mode Mode, fns ...func()) {
	if mode == Sequential {
		for _, fn := range fns {
			fn()
		}
		return
	}
	panics := make([]*panicError, len(fns))
	var wg sync.WaitGroup
	for i, fn := range fns {
		wg.Add(1)
		go func(i int, fn func()) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[i] = &panicError{index: i, value: r}
				}
			}()
			fn()
		}(i, fn)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(*p)
		}
	}
}

// For executes body(i) for i = lo; i < hi; i += step as the iterations of
// a multithreaded for-loop and returns when every iteration has
// terminated. Each thread receives its own copy of the control variable,
// as the notation requires. step must be positive; For panics otherwise.
// In Sequential mode iterations run in ascending order on the calling
// goroutine. If any iteration panics, For panics with the lowest-index
// panic value after all iterations have terminated.
func For(mode Mode, lo, hi, step int, body func(i int)) {
	if step <= 0 {
		panic("sthreads: For requires a positive step")
	}
	if mode == Sequential {
		for i := lo; i < hi; i += step {
			body(i)
		}
		return
	}
	n := 0
	for i := lo; i < hi; i += step {
		n++
	}
	panics := make([]*panicError, n)
	var wg sync.WaitGroup
	idx := 0
	for i := lo; i < hi; i += step {
		wg.Add(1)
		go func(slot, i int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[slot] = &panicError{index: i, value: r}
				}
			}()
			body(i)
		}(idx, i)
		idx++
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(*p)
		}
	}
}

// ForN is For over the common range [0, n) with step 1.
func ForN(mode Mode, n int, body func(i int)) {
	For(mode, 0, n, 1, body)
}

// ForChunked executes body(lo, hi) for the numChunks block sub-ranges of
// [0, n) produced by the paper's t*N/numThreads partition rule, one thread
// per chunk. Chunks may be empty when numChunks > n (the body still runs,
// with lo == hi). It panics if numChunks < 1.
func ForChunked(mode Mode, n, numChunks int, body func(chunk, lo, hi int)) {
	if numChunks < 1 {
		panic("sthreads: ForChunked requires numChunks >= 1")
	}
	ForN(mode, numChunks, func(t int) {
		body(t, t*n/numChunks, (t+1)*n/numChunks)
	})
}

// ForLimited is ForN with at most maxConcurrent bodies running at once —
// bounded parallelism for iteration counts far above the processor count.
// In Sequential mode the limit is irrelevant (bodies run one at a time),
// and maxConcurrent == 1 likewise degenerates to sequential execution in
// index order. It panics if maxConcurrent < 1.
func ForLimited(mode Mode, n, maxConcurrent int, body func(i int)) {
	if maxConcurrent < 1 {
		panic("sthreads: ForLimited requires maxConcurrent >= 1")
	}
	if mode == Sequential || maxConcurrent == 1 {
		ForN(Sequential, n, body)
		return
	}
	sem := make(chan struct{}, maxConcurrent)
	ForN(mode, n, func(i int) {
		sem <- struct{}{}
		defer func() { <-sem }()
		body(i)
	})
}

// yieldNow cedes the processor once; tests use it to encourage
// interleaving on single-P runtimes.
func yieldNow() { runtime.Gosched() }
