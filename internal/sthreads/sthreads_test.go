package sthreads

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"monotonic/internal/core"
)

func TestBlockRunsAllStatements(t *testing.T) {
	for _, mode := range Modes {
		var a, b, c atomic.Bool
		Block(mode,
			func() { a.Store(true) },
			func() { b.Store(true) },
			func() { c.Store(true) },
		)
		if !a.Load() || !b.Load() || !c.Load() {
			t.Fatalf("%v: not all statements ran", mode)
		}
	}
}

func TestBlockEmpty(t *testing.T) {
	for _, mode := range Modes {
		Block(mode) // must not hang or panic
	}
}

func TestBlockJoinsBeforeReturning(t *testing.T) {
	var done atomic.Int32
	Block(Concurrent,
		func() { done.Add(1) },
		func() { done.Add(1) },
	)
	if done.Load() != 2 {
		t.Fatal("Block returned before all threads terminated")
	}
}

func TestForIterationRange(t *testing.T) {
	for _, mode := range Modes {
		var mu sync.Mutex
		var seen []int
		For(mode, 2, 11, 3, func(i int) {
			mu.Lock()
			seen = append(seen, i)
			mu.Unlock()
		})
		sort.Ints(seen)
		want := []int{2, 5, 8}
		if len(seen) != len(want) {
			t.Fatalf("%v: seen %v, want %v", mode, seen, want)
		}
		for i := range want {
			if seen[i] != want[i] {
				t.Fatalf("%v: seen %v, want %v", mode, seen, want)
			}
		}
	}
}

func TestForEmptyRange(t *testing.T) {
	for _, mode := range Modes {
		ran := false
		For(mode, 5, 5, 1, func(int) { ran = true })
		For(mode, 7, 3, 1, func(int) { ran = true })
		if ran {
			t.Fatalf("%v: body ran on empty range", mode)
		}
	}
}

func TestForNonPositiveStepPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("For with step 0 did not panic")
		}
	}()
	For(Concurrent, 0, 10, 0, func(int) {})
}

func TestSequentialOrder(t *testing.T) {
	var order []int
	For(Sequential, 0, 5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order %v", order)
		}
	}
	var blockOrder []string
	Block(Sequential,
		func() { blockOrder = append(blockOrder, "a") },
		func() { blockOrder = append(blockOrder, "b") },
	)
	if strings.Join(blockOrder, "") != "ab" {
		t.Fatalf("sequential block order %v", blockOrder)
	}
}

func TestPanicPropagation(t *testing.T) {
	for _, mode := range Modes {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%v: panic not propagated", mode)
				}
				pe, ok := r.(panicError)
				if mode == Concurrent {
					if !ok {
						t.Fatalf("%v: recovered %T, want panicError", mode, r)
					}
					if pe.value != "boom" {
						t.Fatalf("%v: panic value %v", mode, pe.value)
					}
				}
			}()
			Block(mode,
				func() {},
				func() { panic("boom") },
			)
		}()
	}
}

func TestPanicWaitsForSiblings(t *testing.T) {
	var finished atomic.Bool
	func() {
		defer func() { recover() }()
		Block(Concurrent,
			func() { panic("early") },
			func() {
				for i := 0; i < 1000; i++ {
					_ = i * i
				}
				finished.Store(true)
			},
		)
	}()
	if !finished.Load() {
		t.Fatal("Block panicked before sibling thread terminated")
	}
}

func TestLowestIndexPanicWins(t *testing.T) {
	defer func() {
		pe, ok := recover().(panicError)
		if !ok || pe.index != 0 {
			t.Fatalf("recovered %v, want panic from thread 0", pe)
		}
	}()
	Block(Concurrent,
		func() { panic("first") },
		func() { panic("second") },
	)
}

func TestNesting(t *testing.T) {
	for _, outer := range Modes {
		for _, inner := range Modes {
			var total atomic.Int64
			For(outer, 0, 4, 1, func(i int) {
				For(inner, 0, 8, 1, func(j int) {
					total.Add(int64(i*8 + j))
				})
			})
			want := int64(31 * 32 / 2)
			if total.Load() != want {
				t.Fatalf("outer=%v inner=%v: total=%d want %d", outer, inner, total.Load(), want)
			}
		}
	}
}

// TestSection6CounterProgram runs the deterministic two-thread counter
// program from section 6 under both modes; x must always become (x+1)*2.
func TestSection6CounterProgram(t *testing.T) {
	for _, mode := range Modes {
		for trial := 0; trial < 50; trial++ {
			x := 3
			xCount := core.New()
			Block(mode,
				func() { xCount.Check(0); x = x + 1; xCount.Increment(1) },
				func() { xCount.Check(1); x = x * 2; xCount.Increment(1) },
			)
			if x != 8 {
				t.Fatalf("%v trial %d: x=%d, want 8 (deterministic)", mode, trial, x)
			}
		}
	}
}

// TestQuickForCoversRange: For visits exactly the set {lo, lo+step, ...}
// below hi, once each, in both modes.
func TestQuickForCoversRange(t *testing.T) {
	f := func(lo8, span, step8 uint8) bool {
		lo := int(lo8)
		hi := lo + int(span%64)
		step := int(step8%5) + 1
		want := map[int]int{}
		for i := lo; i < hi; i += step {
			want[i]++
		}
		for _, mode := range Modes {
			var mu sync.Mutex
			got := map[int]int{}
			For(mode, lo, hi, step, func(i int) {
				mu.Lock()
				got[i]++
				mu.Unlock()
			})
			if len(got) != len(want) {
				return false
			}
			for k, v := range want {
				if got[k] != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestModeString(t *testing.T) {
	if Concurrent.String() != "concurrent" || Sequential.String() != "sequential" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Fatalf("unknown mode = %q", Mode(9).String())
	}
}

func TestPanicErrorMessage(t *testing.T) {
	e := panicError{index: 2, value: "boom"}
	if e.Error() != "sthreads: thread 2 panicked: boom" {
		t.Fatalf("Error() = %q", e.Error())
	}
}
