// Broadcast: the paper's section 5.3 single-writer multiple-reader
// pattern with per-thread blocked granularity.
//
// One writer produces a million-item sequence; readers of very different
// characters — a per-item streamer, a medium-block batcher, and a
// whole-array analyst — all synchronize through the same counter, each at
// its own block size. Run with:
//
//	go run ./examples/broadcast
package main

import (
	"fmt"
	"sync"

	"monotonic/counter"
)

const items = 200000

func main() {
	data := make([]int64, items)
	var dataCount counter.Counter

	var wg sync.WaitGroup
	results := make(map[string]int64)
	var mu sync.Mutex

	reader := func(name string, blockSize int) {
		defer wg.Done()
		var sum int64
		for i := 0; i < items; i++ {
			if i%blockSize == 0 {
				level := i + blockSize
				if level > items {
					level = items
				}
				dataCount.Check(uint64(level))
			}
			sum += data[i]
		}
		mu.Lock()
		results[name] = sum
		mu.Unlock()
	}

	wg.Add(3)
	go reader("streamer (block 1)", 1)
	go reader("batcher (block 1024)", 1024)
	go reader("analyst (whole array)", items)

	// The writer publishes in blocks of 64: cheap items make per-item
	// synchronization wasteful, so it amortizes (second listing of
	// section 5.3).
	const writerBlock = 64
	for i := 0; i < items; i++ {
		data[i] = int64(i) * 3
		if (i+1)%writerBlock == 0 {
			dataCount.Increment(writerBlock)
		}
	}
	dataCount.Increment(items % writerBlock)

	wg.Wait()
	want := int64(items) * int64(items-1) / 2 * 3
	for name, sum := range results {
		status := "ok"
		if sum != want {
			status = "WRONG"
		}
		fmt.Printf("%-22s sum=%d %s\n", name, sum, status)
	}
	fmt.Println("every reader saw the full sequence through one counter.")
}
