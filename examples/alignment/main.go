// Alignment: a 2-D wavefront computation — global sequence alignment —
// pipelined through counters, written against the public API.
//
// The DP cell (i,j) needs (i-1,j), (i,j-1), (i-1,j-1). Rows are split
// into bands, one goroutine per band; each band's counter broadcasts
// "columns up to k*block of my last row are final" to the band below.
// Every level of each counter is consumed in order — the dynamically
// varying suspension queues doing real work. Run with:
//
//	go run ./examples/alignment
package main

import (
	"fmt"
	"math/rand"
	"sync"

	"monotonic/counter"
)

const (
	bands     = 4
	blockCols = 32
)

func main() {
	rng := rand.New(rand.NewSource(7))
	a := randomDNA(rng, 400)
	b := randomDNA(rng, 380)

	par := editDistanceBanded(a, b)
	seq := editDistanceSeq(a, b)
	fmt.Printf("edit distance of %d x %d random DNA: %d (parallel) vs %d (sequential)\n",
		len(a), len(b), par, seq)
	if par != seq {
		panic("wavefront diverged")
	}
	fmt.Println("banded wavefront is exact.")
}

func randomDNA(rng *rand.Rand, n int) string {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = "acgt"[rng.Intn(4)]
	}
	return string(buf)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func cell(diag, up, left int, ca, cb byte) int {
	sub := diag + 1
	if ca == cb {
		sub = diag
	}
	return min3(sub, up+1, left+1)
}

func editDistanceSeq(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cur[j] = cell(prev[j-1], prev[j], cur[j-1], a[i-1], b[j-1])
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func editDistanceBanded(a, b string) int {
	n, m := len(a), len(b)
	boundary := make([][]int, bands+1)
	done := make([]*counter.Counter, bands)
	for t := range done {
		done[t] = counter.New()
	}
	boundary[0] = make([]int, m+1)
	for j := 0; j <= m; j++ {
		boundary[0][j] = j
	}
	lo := func(t int) int { return t * n / bands }
	hi := func(t int) int { return (t + 1) * n / bands }
	for t := 1; t <= bands; t++ {
		boundary[t] = make([]int, m+1)
		boundary[t][0] = hi(t - 1)
	}
	blocks := (m + blockCols - 1) / blockCols

	var wg sync.WaitGroup
	for t := 0; t < bands; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			rows := hi(t) - lo(t)
			work := make([][]int, rows)
			for r := range work {
				work[r] = make([]int, m+1)
				work[r][0] = lo(t) + r + 1
			}
			for blk := 0; blk < blocks; blk++ {
				jStart, jEnd := blk*blockCols+1, (blk+1)*blockCols
				if jEnd > m {
					jEnd = m
				}
				if t > 0 {
					done[t-1].Check(uint64(blk) + 1) // predecessor's block is final
				}
				for r := 0; r < rows; r++ {
					above := boundary[t]
					if r > 0 {
						above = work[r-1]
					}
					for j := jStart; j <= jEnd; j++ {
						work[r][j] = cell(above[j-1], above[j], work[r][j-1], a[lo(t)+r], b[j-1])
					}
				}
				copy(boundary[t+1][jStart:jEnd+1], work[rows-1][jStart:jEnd+1])
				done[t].Increment(1) // broadcast to the band below
			}
		}(t)
	}
	wg.Wait()
	return boundary[bands][m]
}
