// Quickstart: the two counter operations, and why monotonicity matters.
//
// A writer publishes a sequence of values through a shared array; readers
// consume it with no locks, no condition variables, and no channels —
// one monotonic counter synchronizes everybody. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"monotonic/counter"
)

func main() {
	const items = 10
	data := make([]string, items)
	var published counter.Counter // zero value ready; value 0

	var wg sync.WaitGroup

	// Three readers, each pacing itself independently. Check(i+1)
	// suspends until the writer's value reaches i+1, i.e. until item i
	// is published. Because the value never decreases, a reader that
	// arrives late simply sails through levels that are already
	// satisfied — there is no race to "catch" a notification.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < items; i++ {
				published.Check(uint64(i) + 1)
				fmt.Printf("reader %d saw %q\n", r, data[i])
			}
		}(r)
	}

	// The writer: publish, then increment. The increment broadcasts to
	// every reader waiting at any satisfied level.
	for i := 0; i < items; i++ {
		data[i] = fmt.Sprintf("item-%02d", i)
		published.Increment(1)
	}

	wg.Wait()

	// The same counter can also impose a deterministic order on a
	// critical section (paper, section 5.2): thread i enters only when
	// the value reaches i, and releases thread i+1.
	var order counter.Counter
	result := 0
	for i := 4; i >= 0; i-- {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			order.Check(uint64(i))     // wait my turn
			result = result*10 + i + 1 // non-commutative: order is visible
			order.Increment(1)         // hand over to thread i+1
		}(i)
	}
	wg.Wait()
	fmt.Printf("ordered accumulation result: %d (always 12345)\n", result)
}
