// Task graph: counters as the engine of a dataflow task executor.
//
// A build-like dependency graph runs with bounded workers; each task's
// completion counter is both the scheduling gate and the memory fence for
// its result, so the executor needs no locks or channels for data. Run
// with:
//
//	go run ./examples/taskgraph
package main

import (
	"fmt"
	"strings"

	"monotonic/internal/dag"
)

func main() {
	g := dag.New()

	g.MustTask("fetch-a", nil, func(map[string]any) (any, error) {
		return "alpha", nil
	})
	g.MustTask("fetch-b", nil, func(map[string]any) (any, error) {
		return "beta", nil
	})
	g.MustTask("parse-a", []string{"fetch-a"}, func(d map[string]any) (any, error) {
		return strings.ToUpper(d["fetch-a"].(string)), nil
	})
	g.MustTask("parse-b", []string{"fetch-b"}, func(d map[string]any) (any, error) {
		return strings.ToUpper(d["fetch-b"].(string)), nil
	})
	g.MustTask("link", []string{"parse-a", "parse-b"}, func(d map[string]any) (any, error) {
		return d["parse-a"].(string) + "+" + d["parse-b"].(string), nil
	})
	g.MustTask("test", []string{"link"}, func(d map[string]any) (any, error) {
		return fmt.Sprintf("tested(%s)", d["link"]), nil
	})
	g.MustTask("package", []string{"link", "test"}, func(d map[string]any) (any, error) {
		return fmt.Sprintf("pkg[%s | %s]", d["link"], d["test"]), nil
	})

	for _, workers := range []int{1, 2, 8} {
		res, err := g.Run(workers)
		if err != nil {
			panic(err)
		}
		fmt.Printf("workers=%d: %s\n", workers, res["package"])
	}
	fmt.Println("same result at every worker count: counter-ordered dataflow is deterministic.")
}
