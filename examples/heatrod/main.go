// Heat rod: the paper's section 5.1 ragged barrier.
//
// A one-dimensional rod is simulated with one goroutine per interior
// cell. Instead of a global barrier each time step, each cell
// synchronizes only with its two neighbours through an array of counters:
// c[i] reaching 2t-1 means cell i has read its neighbours for step t, and
// 2t means it has finished step t. Fast cells run ahead of slow ones —
// the "ragged" barrier. Run with:
//
//	go run ./examples/heatrod
package main

import (
	"fmt"
	"sync"

	"monotonic/counter"
)

const (
	cells    = 32
	numSteps = 500
)

func update(l, s, r float64) float64 { return s + 0.25*(l-2*s+r) }

func main() {
	state := make([]float64, cells)
	state[0], state[cells-1] = 100, 100 // hot ends, fixed

	c := make([]counter.Counter, cells)
	// Boundary cells never change: pre-satisfy every level their
	// neighbours will ever check.
	c[0].Increment(2 * numSteps)
	c[cells-1].Increment(2 * numSteps)

	var wg sync.WaitGroup
	for i := 1; i < cells-1; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			myState := state[i]
			for t := uint64(1); t <= numSteps; t++ {
				c[i-1].Check(2*t - 2) // left neighbour finished step t-1
				lState := state[i-1]
				c[i+1].Check(2*t - 2) // right neighbour finished step t-1
				rState := state[i+1]
				c[i].Increment(1) // my neighbours' states are read
				myState = update(lState, myState, rState)
				c[i-1].Check(2*t - 1) // left neighbour has read my state
				c[i+1].Check(2*t - 1) // right neighbour has read my state
				state[i] = myState
				c[i].Increment(1) // step t published
			}
		}(i)
	}
	wg.Wait()

	fmt.Printf("rod after %d steps (ends fixed at 100):\n", numSteps)
	for i := 0; i < cells; i += 4 {
		fmt.Printf("  cell %2d: %7.3f\n", i, state[i])
	}

	// Cross-check against a plain double-buffered sequential run.
	seq := sequential()
	for i := range seq {
		if seq[i] != state[i] {
			panic("ragged result diverged from sequential")
		}
	}
	fmt.Println("bit-identical to the sequential simulation.")
}

func sequential() []float64 {
	cur := make([]float64, cells)
	cur[0], cur[cells-1] = 100, 100
	next := append([]float64(nil), cur...)
	for t := 0; t < numSteps; t++ {
		for i := 1; i < cells-1; i++ {
			next[i] = update(cur[i-1], cur[i], cur[i+1])
		}
		cur, next = next, cur
	}
	return cur
}
