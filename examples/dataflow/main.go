// Dataflow: many-to-many dependencies through one counter — the shape of
// the Paraffins Problem the paper's section 5.3 cites.
//
// Stage n of this pipeline needs *all* earlier stages: it computes the
// number of binary trees with n nodes by the convolution
// C(n) = sum_{i} C(i)*C(n-1-i) (the Catalan recurrence). One goroutine
// per stage, one shared array, one counter whose value means "stages
// 0..value-1 are published". This is dataflow synchronization that a
// single condition variable or semaphore cannot express directly: each
// stage waits at its own level, and one Increment releases every stage
// whose prerequisites just completed. Run with:
//
//	go run ./examples/dataflow
package main

import (
	"fmt"
	"sync"

	"monotonic/counter"
)

const stages = 30

func main() {
	results := make([]uint64, stages)
	var published counter.Counter

	// Stage 0 is the base case.
	results[0] = 1
	published.Increment(1)

	var wg sync.WaitGroup
	for n := 1; n < stages; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			// Wait until every stage below n is published, then read
			// them all — a many-to-many dependency through one object.
			published.Check(uint64(n))
			var total uint64
			for i := 0; i < n; i++ {
				total += results[i] * results[n-1-i]
			}
			results[n] = total
			published.Increment(1)
		}(n)
	}
	wg.Wait()

	fmt.Println("Catalan numbers via counter-synchronized dataflow:")
	for n := 0; n < stages; n += 5 {
		fmt.Printf("  C(%2d) = %d\n", n, results[n])
	}
	// Spot-check against closed-form values.
	want := map[int]uint64{5: 42, 10: 16796, 15: 9694845, 20: 6564120420}
	for n, w := range want {
		if results[n] != w {
			panic(fmt.Sprintf("C(%d) = %d, want %d", n, results[n], w))
		}
	}
	fmt.Println("spot checks against known Catalan values passed.")
}
