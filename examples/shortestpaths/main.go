// Shortest paths: the paper's section 4 headline example, written against
// the public counter API.
//
// The multithreaded Floyd-Warshall algorithm lets each thread proceed to
// iteration k as soon as row k is ready, instead of meeting at a barrier:
// a single counter replaces an array of N condition variables. Run with:
//
//	go run ./examples/shortestpaths
package main

import (
	"fmt"
	"math/rand"
	"sync"

	"monotonic/counter"
)

const (
	n          = 64 // vertices
	numThreads = 4
	inf        = 1 << 30
)

func main() {
	edge := randomGraph()

	seq := floydWarshallSeq(edge)
	par := floydWarshallCounter(edge)

	for i := range seq {
		for j := range seq[i] {
			if seq[i][j] != par[i][j] {
				panic("parallel result diverged")
			}
		}
	}
	fmt.Printf("all-pairs shortest paths on %d vertices, %d threads: parallel == sequential\n", n, numThreads)
	fmt.Printf("sample: path[0][%d] = %d, path[%d][0] = %d\n", n-1, par[0][n-1], n-1, par[n-1][0])
}

func randomGraph() [][]int {
	rng := rand.New(rand.NewSource(11))
	edge := make([][]int, n)
	for i := range edge {
		edge[i] = make([]int, n)
		for j := range edge[i] {
			switch {
			case i == j:
				edge[i][j] = 0
			case rng.Float64() < 0.3:
				edge[i][j] = rng.Intn(20)
			default:
				edge[i][j] = inf
			}
		}
	}
	return edge
}

func clone(m [][]int) [][]int {
	out := make([][]int, len(m))
	for i := range m {
		out[i] = append([]int(nil), m[i]...)
	}
	return out
}

func floydWarshallSeq(edge [][]int) [][]int {
	path := clone(edge)
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d := path[i][k] + path[k][j]; d < path[i][j] {
					path[i][j] = d
				}
			}
		}
	}
	return path
}

// floydWarshallCounter is the paper's ShortestPaths3: threads own row
// blocks; kCount.Check(k) gates iteration k; the owner of row k+1
// publishes it into kRow and increments.
func floydWarshallCounter(edge [][]int) [][]int {
	path := clone(edge)
	kRow := make([][]int, n+1)
	kRow[0] = append([]int(nil), path[0]...)
	var kCount counter.Counter

	var wg sync.WaitGroup
	for t := 0; t < numThreads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			lo, hi := t*n/numThreads, (t+1)*n/numThreads
			for k := 0; k < n; k++ {
				kCount.Check(uint64(k)) // wait until row k is published
				krow := kRow[k]
				for i := lo; i < hi; i++ {
					pik := path[i][k]
					row := path[i]
					for j := 0; j < n; j++ {
						if d := pik + krow[j]; d < row[j] {
							row[j] = d
						}
					}
					if i == k+1 {
						kRow[k+1] = append([]int(nil), path[k+1]...)
						kCount.Increment(1) // broadcast: iteration k+1 may begin
					}
				}
			}
		}(t)
	}
	wg.Wait()
	return path
}
