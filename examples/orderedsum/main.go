// Ordered sum: the paper's section 5.2 — mutual exclusion with
// sequential ordering.
//
// Floating-point addition is not associative, so a lock-based parallel
// sum returns different results run to run. Replacing the lock pair with
// a counter pair makes the accumulation order deterministic: the result
// is bit-identical to the sequential sum on every run. Run with:
//
//	go run ./examples/orderedsum
package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"monotonic/counter"
)

const n = 64

func main() {
	// Values spanning wild magnitudes, so order visibly changes the sum.
	rng := rand.New(rand.NewSource(5))
	values := make([]float64, n)
	for i := range values {
		values[i] = (rng.Float64() - 0.5) * float64(int64(1)<<uint(rng.Intn(50)))
	}

	seq := 0.0
	for _, v := range values {
		seq += v
	}

	lockResults := map[float64]int{}
	counterResults := map[float64]int{}
	for trial := 0; trial < 100; trial++ {
		lockResults[lockSum(values)]++
		counterResults[counterSum(values)]++
	}

	fmt.Printf("sequential sum:        %.17g\n", seq)
	fmt.Printf("lock-based (100 runs):    %d distinct result(s)\n", len(lockResults))
	fmt.Printf("counter-based (100 runs): %d distinct result(s)\n", len(counterResults))
	for v := range counterResults {
		fmt.Printf("counter result:        %.17g (equals sequential: %v)\n", v, v == seq)
	}
}

// lockSum: maximal concurrency, nondeterministic accumulation order.
func lockSum(values []float64) float64 {
	var mu sync.Mutex
	var wg sync.WaitGroup
	sum := 0.0
	for i := range values {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v := values[i] // "compute" the subresult...
			for y := rand.Intn(8); y > 0; y-- {
				runtime.Gosched() // ...taking a thread-dependent amount of time
			}
			mu.Lock()
			sum += v
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	return sum
}

// counterSum: the pair of lock operations replaced by a pair of counter
// operations — thread i accumulates only when the counter reaches i.
func counterSum(values []float64) float64 {
	var c counter.Counter
	var wg sync.WaitGroup
	sum := 0.0
	for i := range values {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v := values[i]
			c.Check(uint64(i))
			sum += v
			c.Increment(1)
		}(i)
	}
	wg.Wait()
	return sum
}
