// Heat plate: the section 5.1 ragged barrier in two dimensions, written
// against the public counter API.
//
// A rectangular plate is decomposed into tiles, one goroutine and one
// counter per tile. A tile synchronizes only with its four neighbours:
// its counter at 2t-1 means "I have read your halos for step t", at 2t
// "step t is written back". Off-plate neighbours are stood in for by a
// single pre-incremented counter, like the paper's boundary counters.
// Run with:
//
//	go run ./examples/heatplate
package main

import (
	"fmt"
	"sync"

	"monotonic/counter"
)

const (
	rows, cols     = 34, 34
	tilesR, tilesC = 2, 2
	numSteps       = 200
)

func update(u, l, s, r, d float64) float64 {
	return s + 0.125*(u+l+r+d-4*s)
}

func main() {
	grid := initialGrid()
	seq := simulateSequential(initialGrid())
	simulateTiled(grid)

	fmt.Printf("plate after %d steps (top edge 100, left edge 50):\n", numSteps)
	for i := 0; i < rows; i += rows / 6 {
		for j := 0; j < cols; j += cols / 6 {
			fmt.Printf("%8.2f", grid[i][j])
		}
		fmt.Println()
	}
	for i := range grid {
		for j := range grid[i] {
			if grid[i][j] != seq[i][j] {
				panic("tiled result diverged from sequential")
			}
		}
	}
	fmt.Println("bit-identical to the sequential simulation.")
}

func initialGrid() [][]float64 {
	g := make([][]float64, rows)
	for i := range g {
		g[i] = make([]float64, cols)
	}
	for j := 0; j < cols; j++ {
		g[0][j] = 100
	}
	for i := 1; i < rows; i++ {
		g[i][0] = 50
	}
	return g
}

func simulateSequential(g [][]float64) [][]float64 {
	next := initialGrid()
	for t := 0; t < numSteps; t++ {
		for i := 1; i < rows-1; i++ {
			for j := 1; j < cols-1; j++ {
				next[i][j] = update(g[i-1][j], g[i][j-1], g[i][j], g[i][j+1], g[i+1][j])
			}
		}
		g, next = next, g
	}
	return g
}

func simulateTiled(g [][]float64) {
	counters := make([]*counter.Counter, tilesR*tilesC)
	for i := range counters {
		counters[i] = counter.New()
	}
	virtual := counter.New()
	virtual.Increment(2 * numSteps)
	at := func(ti, tj int) *counter.Counter {
		if ti < 0 || ti >= tilesR || tj < 0 || tj >= tilesC {
			return virtual
		}
		return counters[ti*tilesC+tj]
	}
	interiorR, interiorC := rows-2, cols-2

	var wg sync.WaitGroup
	for tid := 0; tid < tilesR*tilesC; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			ti, tj := tid/tilesC, tid%tilesC
			rlo := 1 + ti*interiorR/tilesR
			rhi := 1 + (ti+1)*interiorR/tilesR
			clo := 1 + tj*interiorC/tilesC
			chi := 1 + (tj+1)*interiorC/tilesC
			me := counters[tid]
			nbrs := []*counter.Counter{at(ti-1, tj), at(ti+1, tj), at(ti, tj-1), at(ti, tj+1)}
			h, w := rhi-rlo, chi-clo
			buf := make([]float64, h*w)
			up, down := make([]float64, w), make([]float64, w)
			left, right := make([]float64, h), make([]float64, h)
			for s := uint64(1); s <= numSteps; s++ {
				for _, nb := range nbrs {
					nb.Check(2*s - 2) // neighbours finished step s-1
				}
				for j := clo; j < chi; j++ {
					up[j-clo], down[j-clo] = g[rlo-1][j], g[rhi][j]
				}
				for i := rlo; i < rhi; i++ {
					left[i-rlo], right[i-rlo] = g[i][clo-1], g[i][chi]
				}
				me.Increment(1) // halos read
				k := 0
				for i := rlo; i < rhi; i++ {
					for j := clo; j < chi; j++ {
						u, d, l, r := up[j-clo], down[j-clo], left[i-rlo], right[i-rlo]
						if i > rlo {
							u = g[i-1][j]
						}
						if i < rhi-1 {
							d = g[i+1][j]
						}
						if j > clo {
							l = g[i][j-1]
						}
						if j < chi-1 {
							r = g[i][j+1]
						}
						buf[k] = update(u, l, g[i][j], r, d)
						k++
					}
				}
				for _, nb := range nbrs {
					nb.Check(2*s - 1) // neighbours read our edges
				}
				k = 0
				for i := rlo; i < rhi; i++ {
					for j := clo; j < chi; j++ {
						g[i][j] = buf[k]
						k++
					}
				}
				me.Increment(1) // step s published
			}
		}(tid)
	}
	wg.Wait()
}
