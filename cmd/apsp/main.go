// Command apsp solves random all-pairs shortest-path instances with the
// four programs of the paper's section 4 and reports timings and
// agreement.
//
// Usage:
//
//	apsp -figure1                        # print the paper's Figure 1
//	apsp -n 256 -threads 8 -sync counter # one variant, timed
//	apsp -n 128 -all                     # all variants, cross-checked
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"monotonic/internal/graph"
	"monotonic/internal/sthreads"
	"monotonic/internal/workload"
)

func main() {
	var (
		n        = flag.Int("n", 128, "number of vertices")
		threads  = flag.Int("threads", 4, "worker threads for parallel variants")
		syncMech = flag.String("sync", "counter", "seq | barrier | condvar | counter")
		density  = flag.Float64("density", 0.35, "edge probability")
		seed     = flag.Uint64("seed", 1, "graph seed")
		negative = flag.Bool("negative", false, "include negative edge weights (no negative cycles)")
		skewName = flag.String("skew", "", "inject load imbalance: one-slow | linear | alternating")
		figure1  = flag.Bool("figure1", false, "solve the paper's Figure 1 example and exit")
		all      = flag.Bool("all", false, "run every variant and verify agreement")
	)
	flag.Parse()

	if *figure1 {
		edge := graph.Figure1()
		path := graph.ShortestPaths1(edge)
		fmt.Println("edge matrix (Figure 1 input):")
		fmt.Print(edge.String())
		fmt.Println("path matrix (computed):")
		fmt.Print(path.String())
		if path.Equal(graph.Figure1Paths()) {
			fmt.Println("matches the paper's Figure 1 output.")
		} else {
			fmt.Println("DOES NOT match the paper's Figure 1 output!")
			os.Exit(1)
		}
		return
	}

	var edge graph.Matrix
	if *negative {
		edge = graph.RandomNegative(*n, *density, 15, 6, *seed)
	} else {
		edge = graph.Random(*n, *density, 20, *seed)
	}
	var skew workload.Skew
	switch *skewName {
	case "":
	case "one-slow":
		skew = workload.OneSlow{Max: 4}
	case "linear":
		skew = workload.Linear{Max: 3}
	case "alternating":
		skew = workload.Alternating{Max: 3}
	default:
		fmt.Fprintf(os.Stderr, "apsp: unknown skew %q\n", *skewName)
		os.Exit(2)
	}

	run := func(name string) (graph.Matrix, time.Duration) {
		start := time.Now()
		var m graph.Matrix
		switch name {
		case "seq":
			m = graph.ShortestPaths1(edge)
		case "barrier":
			m = graph.ShortestPaths2(edge, *threads, sthreads.Concurrent, skew)
		case "condvar":
			m = graph.ShortestPaths3CV(edge, *threads, sthreads.Concurrent, skew)
		case "counter":
			m = graph.ShortestPaths3(edge, *threads, sthreads.Concurrent, skew)
		default:
			fmt.Fprintf(os.Stderr, "apsp: unknown sync mechanism %q\n", name)
			os.Exit(2)
		}
		return m, time.Since(start)
	}

	if *all {
		want, dSeq := run("seq")
		fmt.Printf("%-8s %12v\n", "seq", dSeq)
		for _, name := range []string{"barrier", "condvar", "counter"} {
			got, d := run(name)
			status := "ok"
			if !got.Equal(want) {
				status = "DISAGREES"
			}
			fmt.Printf("%-8s %12v  %s\n", name, d, status)
		}
		return
	}

	_, d := run(*syncMech)
	fmt.Printf("n=%d threads=%d sync=%s: %v\n", *n, *threads, *syncMech, d)
}
