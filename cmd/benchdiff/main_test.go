package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseDur(t *testing.T) {
	cases := []struct {
		in string
		ns float64
		ok bool
	}{
		{"417ns", 417, true},
		{"97.9µs", 97_900, true},
		{"97.9us", 97_900, true},
		{"7.94ms", 7_940_000, true},
		{"1.234s", 1_234_000_000, true},
		{"list", 0, false},
		{"10000", 0, false},
		{"2.31x", 0, false},
		{"", 0, false},
		{"ms", 0, false},
		{"-5ms", 0, false},
	}
	for _, c := range cases {
		got, ok := parseDur(c.in)
		if ok != c.ok || (ok && got != c.ns) {
			t.Errorf("parseDur(%q) = %v, %v; want %v, %v", c.in, got, ok, c.ns, c.ok)
		}
	}
}

func TestRowKeySkipsMeasuredCells(t *testing.T) {
	row := []string{"list", "10000", "7.94ms", "2.31x", "12.3M ops/s"}
	if got, want := rowKey(row), "list/10000"; got != want {
		t.Errorf("rowKey = %q, want %q", got, want)
	}
}

func TestLoadRejectsSchemaMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.json")
	buf, err := json.Marshal(report{Schema: "counterbench/v2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = load(path)
	if err == nil {
		t.Fatal("load accepted a report with a mismatched schema version")
	}
	msg := err.Error()
	if strings.Contains(msg, "\n") {
		t.Errorf("schema-mismatch message spans multiple lines: %q", msg)
	}
	if !strings.Contains(msg, "counterbench/v2") || !strings.Contains(msg, "counterbench/v1") {
		t.Errorf("message %q does not name both the found and the expected schema", msg)
	}
}

// captureStdout runs f with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	f()
	w.Close()
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestDiffNoSharedBenchmarks(t *testing.T) {
	oldRep := &report{Schema: "counterbench/v1", Experiments: []experiment{
		{ID: "E10", Tables: []table{{Title: "Reference", Rows: [][]string{{"list", "4.00ms"}}}}},
		{ID: "E12", Tables: []table{{Title: "Baseline", Rows: [][]string{{"bcast", "9.00ms"}}}}},
	}}
	newRep := &report{Schema: "counterbench/v1", Experiments: []experiment{
		{ID: "E21", Tables: []table{{Title: "Overhead", Rows: [][]string{{"list", "25ns"}}}}},
	}}
	var regressions int
	out := captureStdout(t, func() { regressions = diff(oldRep, newRep, 0.25) })
	if regressions != 0 {
		t.Errorf("regressions = %d, want 0 with nothing shared", regressions)
	}
	out = strings.TrimRight(out, "\n")
	if strings.Contains(out, "\n") {
		t.Errorf("no-shared-benchmarks output is not a single line:\n%s", out)
	}
	if !strings.Contains(out, "no shared benchmarks") ||
		!strings.Contains(out, "E10,E12") || !strings.Contains(out, "E21") {
		t.Errorf("output %q does not announce the disjoint experiment sets", out)
	}
}

func TestDiffTableFlagsRegression(t *testing.T) {
	oldT := table{
		Title:   "Single level",
		Headers: []string{"impl", "N", "time"},
		Rows:    [][]string{{"list", "10000", "4.00ms"}},
	}
	newT := table{
		Title:   "Single level",
		Headers: []string{"impl", "N", "time"},
		Rows:    [][]string{{"list", "10000", "6.00ms"}},
	}
	if got := diffTable("E20", oldT, newT, 0.25); got != 1 {
		t.Errorf("regressions = %d, want 1", got)
	}
	if got := diffTable("E20", oldT, newT, 0.60); got != 0 {
		t.Errorf("regressions with loose threshold = %d, want 0", got)
	}
}
