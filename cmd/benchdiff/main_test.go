package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseDur(t *testing.T) {
	cases := []struct {
		in string
		ns float64
		ok bool
	}{
		{"417ns", 417, true},
		{"97.9µs", 97_900, true},
		{"97.9us", 97_900, true},
		{"7.94ms", 7_940_000, true},
		{"1.234s", 1_234_000_000, true},
		{"list", 0, false},
		{"10000", 0, false},
		{"2.31x", 0, false},
		{"", 0, false},
		{"ms", 0, false},
		{"-5ms", 0, false},
	}
	for _, c := range cases {
		got, ok := parseDur(c.in)
		if ok != c.ok || (ok && got != c.ns) {
			t.Errorf("parseDur(%q) = %v, %v; want %v, %v", c.in, got, ok, c.ns, c.ok)
		}
	}
}

func TestRowKeySkipsMeasuredCells(t *testing.T) {
	row := []string{"list", "10000", "7.94ms", "2.31x", "12.3M ops/s"}
	if got, want := rowKey(row), "list/10000"; got != want {
		t.Errorf("rowKey = %q, want %q", got, want)
	}
}

func writeReport(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadRejectsUnknownSchema(t *testing.T) {
	path := writeReport(t, "future.json", `{"schema":"counterbench/v9"}`)
	_, err := load(path)
	if err == nil {
		t.Fatal("load accepted a report with an unknown schema version")
	}
	msg := err.Error()
	if strings.Contains(msg, "\n") {
		t.Errorf("schema-mismatch message spans multiple lines: %q", msg)
	}
	if !strings.Contains(msg, "counterbench/v9") ||
		!strings.Contains(msg, "counterbench/v1") || !strings.Contains(msg, "counterbench/v2") {
		t.Errorf("message %q does not name the found schema and both accepted schemas", msg)
	}
}

// A v1 file — the flat layout of BENCH_1..BENCH_5 — must load as a
// one-run sweep at its recorded GOMAXPROCS, with the legacy title
// decorations stripped so its tables pair with v2 successors.
func TestLoadNormalizesV1(t *testing.T) {
	path := writeReport(t, "old.json", `{
		"schema": "counterbench/v1",
		"gomaxprocs": 1,
		"experiments": [{
			"id": "E19",
			"tables": [
				{"title": "No waiters: storm (GOMAXPROCS=1)", "rows": [["list", "4.00ms"]]},
				{"title": "Round trip (GOMAXPROCS=1, reps=2000)", "rows": [["local", "9.00µs"]]}
			]
		}]
	}`)
	r, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.procs(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("procs = %v, want [1]", got)
	}
	exps := r.runFor(1)
	if len(exps) != 1 || len(exps[0].Tables) != 2 {
		t.Fatalf("runFor(1) = %+v, want one experiment with two tables", exps)
	}
	if got, want := exps[0].Tables[0].Title, "No waiters: storm"; got != want {
		t.Errorf("title = %q, want %q (legacy GOMAXPROCS suffix stripped)", got, want)
	}
	if got, want := exps[0].Tables[1].Title, "Round trip (reps=2000)"; got != want {
		t.Errorf("title = %q, want %q (legacy GOMAXPROCS prefix stripped)", got, want)
	}
}

func TestLoadV2Sweep(t *testing.T) {
	path := writeReport(t, "new.json", `{
		"schema": "counterbench/v2",
		"procs": [1, 4, 2],
		"runs": [
			{"gomaxprocs": 4, "experiments": [{"id": "E19"}]},
			{"gomaxprocs": 1, "experiments": [{"id": "E19"}]},
			{"gomaxprocs": 2, "experiments": [{"id": "E19"}]}
		]
	}`)
	r, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.procs(); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("procs = %v, want [1 2 4] (sorted)", got)
	}
	if r.runFor(3) != nil {
		t.Error("runFor(3) found a run that was never swept")
	}
}

// captureStdout runs f with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	f()
	w.Close()
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestDiffNoSharedBenchmarks(t *testing.T) {
	oldExps := []experiment{
		{ID: "E10", Tables: []table{{Title: "Reference", Rows: [][]string{{"list", "4.00ms"}}}}},
		{ID: "E12", Tables: []table{{Title: "Baseline", Rows: [][]string{{"bcast", "9.00ms"}}}}},
	}
	newExps := []experiment{
		{ID: "E21", Tables: []table{{Title: "Overhead", Rows: [][]string{{"list", "25ns"}}}}},
	}
	var regressions int
	out := captureStdout(t, func() { regressions = diff(oldExps, newExps, 0.25) })
	if regressions != 0 {
		t.Errorf("regressions = %d, want 0 with nothing shared", regressions)
	}
	out = strings.TrimRight(out, "\n")
	if strings.Contains(out, "\n") {
		t.Errorf("no-shared-benchmarks output is not a single line:\n%s", out)
	}
	if !strings.Contains(out, "no shared benchmarks") ||
		!strings.Contains(out, "E10,E12") || !strings.Contains(out, "E21") {
		t.Errorf("output %q does not announce the disjoint experiment sets", out)
	}
}

func TestDiffTableFlagsRegression(t *testing.T) {
	oldT := table{
		Title:   "Single level",
		Headers: []string{"impl", "N", "time"},
		Rows:    [][]string{{"list", "10000", "4.00ms"}},
	}
	newT := table{
		Title:   "Single level",
		Headers: []string{"impl", "N", "time"},
		Rows:    [][]string{{"list", "10000", "6.00ms"}},
	}
	if got := diffTable("E20", oldT, newT, 0.25); got != 1 {
		t.Errorf("regressions = %d, want 1", got)
	}
	if got := diffTable("E20", oldT, newT, 0.60); got != 0 {
		t.Errorf("regressions with loose threshold = %d, want 0", got)
	}
}

// sweep builds a report with one E19 table per proc, timing cell taken
// from ns[proc].
func sweep(quick bool, ns map[int]string) *report {
	r := &report{Schema: "counterbench/v2", Quick: quick}
	procs := make([]int, 0, len(ns))
	for p := range ns {
		procs = append(procs, p)
	}
	for i := range procs { // insertion sort; tiny
		for j := i; j > 0 && procs[j] < procs[j-1]; j-- {
			procs[j], procs[j-1] = procs[j-1], procs[j]
		}
	}
	for _, p := range procs {
		r.Runs = append(r.Runs, run{GOMAXPROCS: p, Experiments: []experiment{{
			ID: "E19",
			Tables: []table{{
				Title:   "No waiters: storm",
				Headers: []string{"implementation", "median"},
				Rows:    [][]string{{"list", ns[p]}},
			}},
		}}})
	}
	return r
}

// A proc count present on only one side must be called out with the
// experiments it carried — shrinking the sweep may not pass silently.
func TestCompareReportsProcSetMismatch(t *testing.T) {
	oldRep := sweep(false, map[int]string{1: "4.00ms", 2: "5.00ms", 4: "6.00ms"})
	newRep := sweep(false, map[int]string{1: "4.00ms", 2: "5.00ms", 8: "9.00ms"})
	var regressions int
	out := captureStdout(t, func() { regressions = compare(oldRep, newRep, 0.25) })
	if regressions != 0 {
		t.Errorf("regressions = %d, want 0 (identical shared cells)", regressions)
	}
	if !strings.Contains(out, "GOMAXPROCS sets differ") {
		t.Errorf("output does not announce the differing proc sets:\n%s", out)
	}
	if !strings.Contains(out, "GOMAXPROCS=4: only in old report — experiments E19 excluded") {
		t.Errorf("output does not name the old-only proc count and its experiments:\n%s", out)
	}
	if !strings.Contains(out, "GOMAXPROCS=8: only in new report — experiments E19 excluded") {
		t.Errorf("output does not name the new-only proc count and its experiments:\n%s", out)
	}
	// The shared procs must still be diffed, per proc.
	if !strings.Contains(out, "== GOMAXPROCS=1 ==") || !strings.Contains(out, "== GOMAXPROCS=2 ==") {
		t.Errorf("shared proc counts were not each diffed:\n%s", out)
	}
}

func TestCompareNoSharedProcs(t *testing.T) {
	oldRep := sweep(false, map[int]string{1: "4.00ms"})
	newRep := sweep(false, map[int]string{2: "4.00ms"})
	var regressions int
	out := captureStdout(t, func() { regressions = compare(oldRep, newRep, 0.25) })
	if regressions != 0 {
		t.Errorf("regressions = %d, want 0", regressions)
	}
	if !strings.Contains(out, "no shared GOMAXPROCS values") ||
		!strings.Contains(out, "old swept 1") || !strings.Contains(out, "new swept 2") {
		t.Errorf("output %q does not report the disjoint proc sets per side", out)
	}
}

// The per-core join: a benchmark that keeps its single-proc time but
// gets steeper with procs is a scaling regression, flagged even though
// no absolute cell crossed the threshold at its own proc count... the
// 2-proc cell here is also an absolute regression, so the scaling WARN
// must come on top of it.
func TestCompareFlagsScalingRegression(t *testing.T) {
	oldRep := sweep(false, map[int]string{1: "4.00ms", 2: "4.40ms"}) // 1.10x at p=2
	newRep := sweep(false, map[int]string{1: "4.00ms", 2: "6.40ms"}) // 1.60x at p=2
	var regressions int
	out := captureStdout(t, func() { regressions = compare(oldRep, newRep, 0.25) })
	if !strings.Contains(out, "WARN: scaling regression") {
		t.Errorf("scaling regression not flagged:\n%s", out)
	}
	if !strings.Contains(out, "scaling (slowdown vs GOMAXPROCS=1)") {
		t.Errorf("scaling section missing or mislabeled:\n%s", out)
	}
	// One absolute regression (the 2-proc cell) + one scaling regression.
	if regressions != 2 {
		t.Errorf("regressions = %d, want 2 (absolute + scaling)", regressions)
	}

	// Uniform slowdown at every proc count: absolute regressions at each
	// proc, but the curve's shape is unchanged — no scaling WARN.
	uniform := sweep(false, map[int]string{1: "8.00ms", 2: "8.80ms"})
	out = captureStdout(t, func() { regressions = compare(oldRep, uniform, 0.25) })
	if strings.Contains(out, "WARN: scaling regression") {
		t.Errorf("uniform slowdown flagged as scaling regression:\n%s", out)
	}
	if regressions != 2 {
		t.Errorf("uniform slowdown: regressions = %d, want 2 (one absolute per proc)", regressions)
	}
}
