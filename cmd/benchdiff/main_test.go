package main

import "testing"

func TestParseDur(t *testing.T) {
	cases := []struct {
		in string
		ns float64
		ok bool
	}{
		{"417ns", 417, true},
		{"97.9µs", 97_900, true},
		{"97.9us", 97_900, true},
		{"7.94ms", 7_940_000, true},
		{"1.234s", 1_234_000_000, true},
		{"list", 0, false},
		{"10000", 0, false},
		{"2.31x", 0, false},
		{"", 0, false},
		{"ms", 0, false},
		{"-5ms", 0, false},
	}
	for _, c := range cases {
		got, ok := parseDur(c.in)
		if ok != c.ok || (ok && got != c.ns) {
			t.Errorf("parseDur(%q) = %v, %v; want %v, %v", c.in, got, ok, c.ns, c.ok)
		}
	}
}

func TestRowKeySkipsMeasuredCells(t *testing.T) {
	row := []string{"list", "10000", "7.94ms", "2.31x", "12.3M ops/s"}
	if got, want := rowKey(row), "list/10000"; got != want {
		t.Errorf("rowKey = %q, want %q", got, want)
	}
}

func TestDiffTableFlagsRegression(t *testing.T) {
	oldT := table{
		Title:   "Single level",
		Headers: []string{"impl", "N", "time"},
		Rows:    [][]string{{"list", "10000", "4.00ms"}},
	}
	newT := table{
		Title:   "Single level",
		Headers: []string{"impl", "N", "time"},
		Rows:    [][]string{{"list", "10000", "6.00ms"}},
	}
	if got := diffTable("E20", oldT, newT, 0.25); got != 1 {
		t.Errorf("regressions = %d, want 1", got)
	}
	if got := diffTable("E20", oldT, newT, 0.60); got != 0 {
		t.Errorf("regressions with loose threshold = %d, want 0", got)
	}
}
