// Command benchdiff compares two counterbench -json reports and prints
// per-benchmark deltas for every timing cell the two runs share. It is
// the trajectory tool behind the checked-in BENCH_<n>.json files: run it
// against the previous snapshot to see what a change did to the
// experiment suite.
//
// Usage:
//
//	benchdiff old.json new.json
//	benchdiff -threshold 0.25 old.json new.json   # custom warn bar
//	benchdiff -fail old.json new.json             # exit 1 on regressions
//
// Rows are matched by experiment ID, table title, and the row's identity
// cells (implementation names, sizes — anything that is not a measured
// quantity), so reordered or added rows diff cleanly. Timing cells are
// parsed back from the harness's human format ("417ns", "97.9µs",
// "7.94ms", "1.234s"). Ratio and rate cells are derived quantities and
// are skipped. By default regressions beyond the threshold are warnings,
// not failures: single-run experiment timings are noisy, and the CI
// bench-smoke job runs quick mode on shared runners.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type report struct {
	Schema      string       `json:"schema"`
	Date        string       `json:"date"`
	GoVersion   string       `json:"go_version"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Quick       bool         `json:"quick"`
	Experiments []experiment `json:"experiments"`
}

type experiment struct {
	ID     string  `json:"id"`
	Title  string  `json:"title"`
	Tables []table `json:"tables"`
}

type table struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

func main() {
	var (
		threshold = flag.Float64("threshold", 0.25, "relative slowdown above which a WARN is printed")
		fail      = flag.Bool("fail", false, "exit nonzero if any cell regresses beyond the threshold")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.25] [-fail] old.json new.json")
		os.Exit(2)
	}
	oldRep, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	newRep, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	if oldRep.Quick != newRep.Quick {
		fmt.Printf("note: comparing quick=%v against quick=%v — sizes differ, deltas are not meaningful\n",
			oldRep.Quick, newRep.Quick)
	}
	if oldRep.GOMAXPROCS != newRep.GOMAXPROCS {
		fmt.Printf("note: GOMAXPROCS differs (%d vs %d)\n", oldRep.GOMAXPROCS, newRep.GOMAXPROCS)
	}

	regressions := diff(oldRep, newRep, *threshold)
	if regressions > 0 {
		fmt.Printf("\n%d cell(s) regressed beyond %.0f%%\n", regressions, *threshold*100)
		if *fail {
			os.Exit(1)
		}
	}
}

func load(path string) (*report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if r.Schema != "counterbench/v1" {
		return nil, fmt.Errorf("%s: schema %q does not match %q — the report was written by an incompatible counterbench version and cannot be compared", path, r.Schema, "counterbench/v1")
	}
	return &r, nil
}

// diff walks every table the two reports share and prints the timing
// deltas. It returns the number of cells that regressed beyond the
// threshold.
func diff(oldRep, newRep *report, threshold float64) int {
	oldTables := index(oldRep)
	shared := 0
	for _, e := range newRep.Experiments {
		for _, nt := range e.Tables {
			if _, ok := oldTables[e.ID+"\x00"+nt.Title]; ok {
				shared++
			}
		}
	}
	if shared == 0 {
		fmt.Printf("no shared benchmarks: old report has %s, new report has %s — nothing to compare\n",
			expIDs(oldRep), expIDs(newRep))
		return 0
	}
	regressions := 0
	for _, e := range newRep.Experiments {
		for _, nt := range e.Tables {
			key := e.ID + "\x00" + nt.Title
			ot, ok := oldTables[key]
			if !ok {
				fmt.Printf("%s %q: only in new report\n", e.ID, nt.Title)
				continue
			}
			regressions += diffTable(e.ID, ot, nt, threshold)
		}
	}
	newKeys := make(map[string]bool)
	for _, e := range newRep.Experiments {
		for _, t := range e.Tables {
			newKeys[e.ID+"\x00"+t.Title] = true
		}
	}
	for _, e := range oldRep.Experiments {
		for _, t := range e.Tables {
			if !newKeys[e.ID+"\x00"+t.Title] {
				fmt.Printf("%s %q: only in old report\n", e.ID, t.Title)
			}
		}
	}
	return regressions
}

// expIDs summarizes a report as its experiment ID list, for the
// no-shared-benchmarks message.
func expIDs(r *report) string {
	if len(r.Experiments) == 0 {
		return "no experiments"
	}
	ids := make([]string, 0, len(r.Experiments))
	for _, e := range r.Experiments {
		ids = append(ids, e.ID)
	}
	return strings.Join(ids, ",")
}

func index(r *report) map[string]table {
	m := make(map[string]table)
	for _, e := range r.Experiments {
		for _, t := range e.Tables {
			m[e.ID+"\x00"+t.Title] = t
		}
	}
	return m
}

func diffTable(expID string, oldT, newT table, threshold float64) int {
	oldRows := make(map[string][]string)
	for _, row := range oldT.Rows {
		oldRows[rowKey(row)] = row
	}
	regressions := 0
	printedHeader := false
	header := func() {
		if !printedHeader {
			fmt.Printf("%s %q\n", expID, newT.Title)
			printedHeader = true
		}
	}
	for _, row := range newT.Rows {
		oldRow, ok := oldRows[rowKey(row)]
		if !ok {
			header()
			fmt.Printf("  %s: row only in new report\n", rowKey(row))
			continue
		}
		for i, cell := range row {
			if i >= len(oldRow) {
				break
			}
			newNs, ok1 := parseDur(cell)
			oldNs, ok2 := parseDur(oldRow[i])
			if !ok1 || !ok2 || oldNs == 0 {
				continue
			}
			delta := (newNs - oldNs) / oldNs
			col := ""
			if i < len(newT.Headers) {
				col = newT.Headers[i]
			}
			header()
			mark := ""
			if delta > threshold {
				mark = "  WARN: regression"
				regressions++
			}
			fmt.Printf("  %-40s %10s -> %-10s %+6.1f%%%s\n",
				rowKey(row)+" ["+col+"]", oldRow[i], cell, delta*100, mark)
		}
	}
	return regressions
}

// rowKey joins a row's identity cells: everything that is not a measured
// quantity (timing, ratio, or rate). Implementation names and problem
// sizes survive, so rows pair up even if the tables were reordered or
// extended between runs.
func rowKey(row []string) string {
	var parts []string
	for _, cell := range row {
		if _, ok := parseDur(cell); ok {
			continue
		}
		if isDerived(cell) {
			continue
		}
		parts = append(parts, cell)
	}
	return strings.Join(parts, "/")
}

// parseDur parses the harness's human duration format back into
// nanoseconds: "417ns", "97.9µs" (or "us"), "7.94ms", "1.234s".
func parseDur(s string) (float64, bool) {
	var unit float64
	var num string
	switch {
	case strings.HasSuffix(s, "ns"):
		unit, num = 1, strings.TrimSuffix(s, "ns")
	case strings.HasSuffix(s, "µs"):
		unit, num = 1e3, strings.TrimSuffix(s, "µs")
	case strings.HasSuffix(s, "us"):
		unit, num = 1e3, strings.TrimSuffix(s, "us")
	case strings.HasSuffix(s, "ms"):
		unit, num = 1e6, strings.TrimSuffix(s, "ms")
	case strings.HasSuffix(s, "s"):
		unit, num = 1e9, strings.TrimSuffix(s, "s")
	default:
		return 0, false
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil || v < 0 {
		return 0, false
	}
	return v * unit, true
}

// isDerived reports whether a cell is a derived quantity that should be
// neither compared nor used as row identity: speedup ratios ("2.31x",
// "inf") and rates ("48.38M/s", "12.3M ops/s").
func isDerived(s string) bool {
	if s == "inf" {
		return true
	}
	if strings.HasSuffix(s, "/s") {
		return true
	}
	if strings.HasSuffix(s, "x") {
		if _, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64); err == nil {
			return true
		}
	}
	return false
}
