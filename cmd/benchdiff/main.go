// Command benchdiff compares two counterbench -json reports and prints
// per-benchmark deltas for every timing cell the two runs share. It is
// the trajectory tool behind the checked-in BENCH_<n>.json files: run it
// against the previous snapshot to see what a change did to the
// experiment suite.
//
// Usage:
//
//	benchdiff old.json new.json
//	benchdiff -threshold 0.25 old.json new.json   # custom warn bar
//	benchdiff -fail old.json new.json             # exit 1 on regressions
//
// Reports are joined per (benchmark, GOMAXPROCS) pair: a counterbench/v2
// report carries one run per swept proc count, and each shared proc
// count is diffed against its counterpart — never against a run at a
// different proc count. Proc counts present on only one side are listed
// explicitly, with the experiments they carry, so a shrunken sweep is
// visible rather than silently dropped. When two or more proc counts are
// shared, benchdiff also compares each benchmark's *scaling curve* —
// its slowdown at p procs relative to the lowest shared proc count — and
// flags rows whose curve got steeper, which catches a change that keeps
// single-proc speed but loses it under contention. Older counterbench/v1
// reports (BENCH_1 through BENCH_5) load as a single-run sweep at their
// recorded GOMAXPROCS, with the legacy "(GOMAXPROCS=N)" table-title
// decoration stripped so their tables still pair with v2 titles.
//
// Within a table, rows are matched by the row's identity cells
// (implementation names, sizes — anything that is not a measured
// quantity), so reordered or added rows diff cleanly. Timing cells are
// parsed back from the harness's human format ("417ns", "97.9µs",
// "7.94ms", "1.234s"). Ratio and rate cells are derived quantities and
// are skipped. By default regressions beyond the threshold are warnings,
// not failures: single-run experiment timings are noisy, and the CI
// bench-smoke job runs quick mode on shared runners.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// report is the normalized in-memory form of either schema: a sweep of
// runs, one per GOMAXPROCS value. v1 files load as a one-run sweep.
type report struct {
	Schema string
	Quick  bool
	Runs   []run
}

type run struct {
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Experiments []experiment `json:"experiments"`
}

type experiment struct {
	ID     string  `json:"id"`
	Title  string  `json:"title"`
	Tables []table `json:"tables"`
}

type table struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// rawReport is the union of the v1 (flat experiments + gomaxprocs) and
// v2 (runs) JSON layouts; load normalizes it.
type rawReport struct {
	Schema      string       `json:"schema"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Quick       bool         `json:"quick"`
	Runs        []run        `json:"runs"`
	Experiments []experiment `json:"experiments"`
}

func main() {
	var (
		threshold = flag.Float64("threshold", 0.25, "relative slowdown above which a WARN is printed")
		fail      = flag.Bool("fail", false, "exit nonzero if any cell regresses beyond the threshold")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.25] [-fail] old.json new.json")
		os.Exit(2)
	}
	oldRep, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	newRep, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}

	regressions := compare(oldRep, newRep, *threshold)
	if regressions > 0 {
		fmt.Printf("\n%d cell(s) regressed beyond %.0f%%\n", regressions, *threshold*100)
		if *fail {
			os.Exit(1)
		}
	}
}

func load(path string) (*report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var raw rawReport
	if err := json.Unmarshal(buf, &raw); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	r := &report{Schema: raw.Schema, Quick: raw.Quick}
	switch raw.Schema {
	case "counterbench/v1":
		procs := raw.GOMAXPROCS
		if procs == 0 {
			procs = 1
		}
		r.Runs = []run{{GOMAXPROCS: procs, Experiments: raw.Experiments}}
	case "counterbench/v2":
		r.Runs = raw.Runs
	default:
		return nil, fmt.Errorf("%s: schema %q is neither %q nor %q — the report was written by an incompatible counterbench version and cannot be compared", path, raw.Schema, "counterbench/v1", "counterbench/v2")
	}
	sort.Slice(r.Runs, func(i, j int) bool { return r.Runs[i].GOMAXPROCS < r.Runs[j].GOMAXPROCS })
	for ri := range r.Runs {
		for ei := range r.Runs[ri].Experiments {
			for ti := range r.Runs[ri].Experiments[ei].Tables {
				t := &r.Runs[ri].Experiments[ei].Tables[ti]
				t.Title = normalizeTitle(t.Title)
			}
		}
	}
	return r, nil
}

// v1-era table titles embedded the run's GOMAXPROCS; v2 tags the proc
// count on the run instead, so the decoration is stripped at load time
// to keep BENCH_1..BENCH_5 tables pairing with their v2 successors.
var (
	legacyProcsAlone = regexp.MustCompile(` \(GOMAXPROCS=\d+\)`)
	legacyProcsFirst = regexp.MustCompile(`\(GOMAXPROCS=\d+, `)
)

func normalizeTitle(s string) string {
	s = legacyProcsAlone.ReplaceAllString(s, "")
	return legacyProcsFirst.ReplaceAllString(s, "(")
}

// procs returns the sorted GOMAXPROCS values a report swept.
func (r *report) procs() []int {
	out := make([]int, 0, len(r.Runs))
	for _, rn := range r.Runs {
		out = append(out, rn.GOMAXPROCS)
	}
	return out
}

// runFor returns the experiments recorded at one proc count, or nil.
func (r *report) runFor(p int) []experiment {
	for _, rn := range r.Runs {
		if rn.GOMAXPROCS == p {
			return rn.Experiments
		}
	}
	return nil
}

// compare joins the two reports per (benchmark, GOMAXPROCS) pair, prints
// all deltas plus the scaling comparison, and returns the total number
// of cells that regressed beyond the threshold.
func compare(oldRep, newRep *report, threshold float64) int {
	if oldRep.Quick != newRep.Quick {
		fmt.Printf("note: comparing quick=%v against quick=%v — sizes differ, deltas are not meaningful\n",
			oldRep.Quick, newRep.Quick)
	}
	shared := sharedProcs(oldRep, newRep)
	reportProcMismatch(oldRep, newRep, shared)
	if len(shared) == 0 {
		fmt.Printf("no shared GOMAXPROCS values: old swept %s, new swept %s — nothing to compare\n",
			procList(oldRep.procs()), procList(newRep.procs()))
		return 0
	}
	regressions := 0
	multi := len(shared) > 1
	for _, p := range shared {
		if multi {
			fmt.Printf("== GOMAXPROCS=%d ==\n", p)
		}
		regressions += diff(oldRep.runFor(p), newRep.runFor(p), threshold)
	}
	if multi {
		regressions += diffScaling(oldRep, newRep, shared, threshold)
	}
	return regressions
}

func sharedProcs(oldRep, newRep *report) []int {
	var out []int
	for _, p := range oldRep.procs() {
		if newRep.runFor(p) != nil {
			out = append(out, p)
		}
	}
	return out
}

// reportProcMismatch lists every proc count present on only one side,
// together with the experiments recorded there — that data has no
// counterpart and is excluded from the comparison, and saying which
// benchmarks it carried is what makes a shrunken sweep reviewable.
func reportProcMismatch(oldRep, newRep *report, shared []int) {
	oldP, newP := oldRep.procs(), newRep.procs()
	if len(shared) == len(oldP) && len(shared) == len(newP) {
		return
	}
	fmt.Printf("GOMAXPROCS sets differ: old swept %s, new swept %s\n", procList(oldP), procList(newP))
	side := func(name string, r *report, other *report) {
		for _, p := range r.procs() {
			if other.runFor(p) != nil {
				continue
			}
			fmt.Printf("  GOMAXPROCS=%d: only in %s report — experiments %s excluded from comparison\n",
				p, name, expIDs(r.runFor(p)))
		}
	}
	side("old", oldRep, newRep)
	side("new", newRep, oldRep)
}

func procList(ps []int) string {
	if len(ps) == 0 {
		return "none"
	}
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = strconv.Itoa(p)
	}
	return strings.Join(parts, ",")
}

// diff walks every table the two runs share and prints the timing
// deltas. It returns the number of cells that regressed beyond the
// threshold.
func diff(oldExps, newExps []experiment, threshold float64) int {
	oldTables := index(oldExps)
	shared := 0
	for _, e := range newExps {
		for _, nt := range e.Tables {
			if _, ok := oldTables[e.ID+"\x00"+nt.Title]; ok {
				shared++
			}
		}
	}
	if shared == 0 {
		fmt.Printf("no shared benchmarks: old run has %s, new run has %s — nothing to compare\n",
			expIDs(oldExps), expIDs(newExps))
		return 0
	}
	regressions := 0
	for _, e := range newExps {
		for _, nt := range e.Tables {
			key := e.ID + "\x00" + nt.Title
			ot, ok := oldTables[key]
			if !ok {
				fmt.Printf("%s %q: only in new report\n", e.ID, nt.Title)
				continue
			}
			regressions += diffTable(e.ID, ot, nt, threshold)
		}
	}
	newKeys := make(map[string]bool)
	for _, e := range newExps {
		for _, t := range e.Tables {
			newKeys[e.ID+"\x00"+t.Title] = true
		}
	}
	for _, e := range oldExps {
		for _, t := range e.Tables {
			if !newKeys[e.ID+"\x00"+t.Title] {
				fmt.Printf("%s %q: only in old report\n", e.ID, t.Title)
			}
		}
	}
	return regressions
}

// expIDs summarizes a run as its experiment ID list.
func expIDs(exps []experiment) string {
	if len(exps) == 0 {
		return "no experiments"
	}
	ids := make([]string, 0, len(exps))
	for _, e := range exps {
		ids = append(ids, e.ID)
	}
	return strings.Join(ids, ",")
}

func index(exps []experiment) map[string]table {
	m := make(map[string]table)
	for _, e := range exps {
		for _, t := range e.Tables {
			m[e.ID+"\x00"+t.Title] = t
		}
	}
	return m
}

func diffTable(expID string, oldT, newT table, threshold float64) int {
	oldRows := make(map[string][]string)
	for _, row := range oldT.Rows {
		oldRows[rowKey(row)] = row
	}
	regressions := 0
	printedHeader := false
	header := func() {
		if !printedHeader {
			fmt.Printf("%s %q\n", expID, newT.Title)
			printedHeader = true
		}
	}
	for _, row := range newT.Rows {
		oldRow, ok := oldRows[rowKey(row)]
		if !ok {
			header()
			fmt.Printf("  %s: row only in new report\n", rowKey(row))
			continue
		}
		for i, cell := range row {
			if i >= len(oldRow) {
				break
			}
			newNs, ok1 := parseDur(cell)
			oldNs, ok2 := parseDur(oldRow[i])
			if !ok1 || !ok2 || oldNs == 0 {
				continue
			}
			delta := (newNs - oldNs) / oldNs
			col := ""
			if i < len(newT.Headers) {
				col = newT.Headers[i]
			}
			header()
			mark := ""
			if delta > threshold {
				mark = "  WARN: regression"
				regressions++
			}
			fmt.Printf("  %-40s %10s -> %-10s %+6.1f%%%s\n",
				rowKey(row)+" ["+col+"]", oldRow[i], cell, delta*100, mark)
		}
	}
	return regressions
}

// cellKey identifies one timing cell across a sweep: which experiment,
// table, row, and column it sits in. The GOMAXPROCS dimension is the
// curve's x axis and deliberately not part of the key.
type cellKey struct {
	exp, title, row, col string
}

// curves collects, for every timing cell, its duration at each of the
// given proc counts.
func curves(r *report, procs []int) map[cellKey]map[int]float64 {
	out := make(map[cellKey]map[int]float64)
	for _, p := range procs {
		for _, e := range r.runFor(p) {
			for _, t := range e.Tables {
				for _, row := range t.Rows {
					for i, cell := range row {
						ns, ok := parseDur(cell)
						if !ok || ns <= 0 {
							continue
						}
						col := ""
						if i < len(t.Headers) {
							col = t.Headers[i]
						}
						k := cellKey{exp: e.ID, title: t.Title, row: rowKey(row), col: col}
						if out[k] == nil {
							out[k] = make(map[int]float64)
						}
						out[k][p] = ns
					}
				}
			}
		}
	}
	return out
}

// diffScaling compares each benchmark's scaling curve between the two
// reports: its slowdown at p procs relative to the lowest shared proc
// count. A row whose new curve is steeper than its old curve by more
// than the threshold regressed in *scaling* even if every absolute
// duration improved — the per-core comparison is what absolute diffs at
// a single proc count cannot see.
func diffScaling(oldRep, newRep *report, shared []int, threshold float64) int {
	base := shared[0]
	oldC := curves(oldRep, shared)
	newC := curves(newRep, shared)

	keys := make([]cellKey, 0, len(newC))
	for k := range newC {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.exp != b.exp {
			return a.exp < b.exp
		}
		if a.title != b.title {
			return a.title < b.title
		}
		if a.row != b.row {
			return a.row < b.row
		}
		return a.col < b.col
	})

	regressions := 0
	printedHeader := false
	header := func() {
		if !printedHeader {
			fmt.Printf("== scaling (slowdown vs GOMAXPROCS=%d) ==\n", base)
			printedHeader = true
		}
	}
	for _, k := range keys {
		nc, oc := newC[k], oldC[k]
		if oc == nil || nc[base] == 0 || oc[base] == 0 {
			continue
		}
		for _, p := range shared[1:] {
			if nc[p] == 0 || oc[p] == 0 {
				continue
			}
			oldRatio := oc[p] / oc[base]
			newRatio := nc[p] / nc[base]
			delta := (newRatio - oldRatio) / oldRatio
			mark := ""
			if delta > threshold {
				mark = "  WARN: scaling regression"
				regressions++
			}
			header()
			fmt.Printf("  %s %q %-32s p=%d: %.2fx -> %.2fx %+6.1f%%%s\n",
				k.exp, k.title, k.row+" ["+k.col+"]", p, oldRatio, newRatio, delta*100, mark)
		}
	}
	return regressions
}

// rowKey joins a row's identity cells: everything that is not a measured
// quantity (timing, ratio, or rate). Implementation names and problem
// sizes survive, so rows pair up even if the tables were reordered or
// extended between runs.
func rowKey(row []string) string {
	var parts []string
	for _, cell := range row {
		if _, ok := parseDur(cell); ok {
			continue
		}
		if isDerived(cell) {
			continue
		}
		parts = append(parts, cell)
	}
	return strings.Join(parts, "/")
}

// parseDur parses the harness's human duration format back into
// nanoseconds: "417ns", "97.9µs" (or "us"), "7.94ms", "1.234s".
func parseDur(s string) (float64, bool) {
	var unit float64
	var num string
	switch {
	case strings.HasSuffix(s, "ns"):
		unit, num = 1, strings.TrimSuffix(s, "ns")
	case strings.HasSuffix(s, "µs"):
		unit, num = 1e3, strings.TrimSuffix(s, "µs")
	case strings.HasSuffix(s, "us"):
		unit, num = 1e3, strings.TrimSuffix(s, "us")
	case strings.HasSuffix(s, "ms"):
		unit, num = 1e6, strings.TrimSuffix(s, "ms")
	case strings.HasSuffix(s, "s"):
		unit, num = 1e9, strings.TrimSuffix(s, "s")
	default:
		return 0, false
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil || v < 0 {
		return 0, false
	}
	return v * unit, true
}

// isDerived reports whether a cell is a derived quantity that should be
// neither compared nor used as row identity: speedup ratios ("2.31x",
// "inf") and rates ("48.38M/s", "12.3M ops/s").
func isDerived(s string) bool {
	if s == "inf" {
		return true
	}
	if strings.HasSuffix(s, "/s") {
		return true
	}
	if strings.HasSuffix(s, "x") {
		if _, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64); err == nil {
			return true
		}
	}
	return false
}
