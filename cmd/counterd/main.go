// Command counterd serves named monotonic counters over TCP, so
// goroutines in different processes — or on different machines —
// synchronize through the same counters. Clients connect with
// counter/remote, whose counters implement the same counter.Interface
// as the in-process types:
//
//	cl, err := remote.Dial("host:7667")
//	c := cl.Counter("pipeline-stage-1")
//	c.Increment(1)      // any process
//	c.Check(1000)       // any other process
//
// Counters are created on first reference and live for the lifetime of
// the process; the protocol (internal/wire) is retry-safe, so clients
// ride over connection loss transparently. See docs/PATTERNS.md,
// "Counters across processes".
//
// Usage:
//
//	counterd                    # listen on :7667
//	counterd -addr 0.0.0.0:900  # another address
//	counterd -expvar :8123      # also serve /debug/vars for scraping
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"monotonic/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":7667", "TCP address to serve counters on")
		expvarAddr = flag.String("expvar", "", "optional HTTP address for /debug/vars (empty: disabled)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "counterd: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "counterd: %v\n", err)
		os.Exit(1)
	}
	var hsrv *http.Server
	if *expvarAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/debug/vars", expvar.Handler())
		// A bare http.ListenAndServe would hold an untimed listener that
		// nothing ever closes: a peer dribbling its request headers pins
		// a connection forever, and a SIGTERM would leave the port bound
		// until the process dies. A real http.Server bounds the header
		// read and hands shutdown a handle.
		hsrv = &http.Server{
			Addr:              *expvarAddr,
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       10 * time.Second,
			WriteTimeout:      10 * time.Second,
			IdleTimeout:       time.Minute,
		}
		go func() {
			if err := hsrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "counterd: expvar: %v\n", err)
			}
		}()
	}
	shutdownExpvar := func() {
		if hsrv == nil {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hsrv.Shutdown(ctx); err != nil {
			hsrv.Close()
		}
	}

	srv := server.New()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	fmt.Fprintf(os.Stderr, "counterd: serving counters on %s\n", lis.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "counterd: %v, shutting down\n", s)
		srv.Close()
		shutdownExpvar()
		<-done
	case err := <-done:
		shutdownExpvar()
		if err != nil {
			fmt.Fprintf(os.Stderr, "counterd: %v\n", err)
			os.Exit(1)
		}
	}
}
