// Command racecheck runs the paper's section 6 programs (and the main
// synchronization patterns) under the vector-clock determinacy checker of
// internal/detect and reports violations of the shared-variable guard
// condition — the dynamic counterpart of cmd/explore's exhaustive proof.
//
// Usage:
//
//	racecheck             # check every built-in program
//	racecheck -runs 50    # repeat each program under different schedules
package main

import (
	"flag"
	"fmt"
	"os"

	"monotonic/internal/detect"
)

type program struct {
	name    string
	expects string // "clean" or "racy"
	run     func() []detect.Violation
}

func main() {
	runs := flag.Int("runs", 20, "repetitions per program (races may need schedule luck to appear)")
	flag.Parse()

	programs := []program{
		{"section 6 counter program", "clean", counterProgram},
		{"section 6 lock program", "clean", lockProgram},
		{"section 6 unguarded program", "racy", unguardedProgram},
		{"ordered accumulation (5.2)", "clean", orderedAccumulation},
		{"writer/readers broadcast (5.3)", "clean", broadcastPattern},
		{"broadcast missing a Check", "racy", brokenBroadcast},
	}

	failed := false
	for _, p := range programs {
		var seen []detect.Violation
		for i := 0; i < *runs && len(seen) == 0; i++ {
			seen = p.run()
		}
		switch {
		case p.expects == "clean" && len(seen) == 0:
			fmt.Printf("%-32s clean (as expected)\n", p.name)
		case p.expects == "racy" && len(seen) > 0:
			fmt.Printf("%-32s RACE detected (as expected): %s\n", p.name, seen[0])
		case p.expects == "clean":
			failed = true
			fmt.Printf("%-32s UNEXPECTED violations: %v\n", p.name, seen)
		default:
			failed = true
			fmt.Printf("%-32s expected a race but %d runs were silent\n", p.name, *runs)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func counterProgram() []detect.Violation {
	reg := detect.NewRegistry()
	root := reg.Root()
	x := detect.NewVar(root, "x", 3)
	c := detect.NewCounter(root)
	root.Go(
		func(th *detect.Thread) {
			c.Check(th, 0)
			x.Write(th, x.Read(th)+1)
			c.Increment(th, 1)
		},
		func(th *detect.Thread) {
			c.Check(th, 1)
			x.Write(th, x.Read(th)*2)
			c.Increment(th, 1)
		},
	)
	return reg.Violations()
}

func lockProgram() []detect.Violation {
	reg := detect.NewRegistry()
	root := reg.Root()
	x := detect.NewVar(root, "x", 3)
	var m detect.Mutex
	root.Go(
		func(th *detect.Thread) {
			m.Lock(th)
			x.Write(th, x.Read(th)+1)
			m.Unlock(th)
		},
		func(th *detect.Thread) {
			m.Lock(th)
			x.Write(th, x.Read(th)*2)
			m.Unlock(th)
		},
	)
	return reg.Violations()
}

func unguardedProgram() []detect.Violation {
	reg := detect.NewRegistry()
	root := reg.Root()
	x := detect.NewVar(root, "x", 3)
	c := detect.NewCounter(root)
	root.Go(
		func(th *detect.Thread) {
			c.Check(th, 0)
			x.Write(th, x.Read(th)+1)
			c.Increment(th, 1)
		},
		func(th *detect.Thread) {
			c.Check(th, 0)
			x.Write(th, x.Read(th)*2)
			c.Increment(th, 1)
		},
	)
	return reg.Violations()
}

func orderedAccumulation() []detect.Violation {
	const n = 8
	reg := detect.NewRegistry()
	root := reg.Root()
	result := detect.NewVar(root, "result", 0)
	c := detect.NewCounter(root)
	bodies := make([]func(*detect.Thread), n)
	for i := range bodies {
		i := i
		bodies[i] = func(th *detect.Thread) {
			c.Check(th, uint64(i))
			result.Write(th, result.Read(th)+i)
			c.Increment(th, 1)
		}
	}
	root.Go(bodies...)
	return reg.Violations()
}

func broadcastPattern() []detect.Violation {
	const n = 12
	reg := detect.NewRegistry()
	root := reg.Root()
	data := make([]*detect.Var[int], n)
	for i := range data {
		data[i] = detect.NewVar(root, fmt.Sprintf("data[%d]", i), 0)
	}
	c := detect.NewCounter(root)
	writer := func(th *detect.Thread) {
		for i := 0; i < n; i++ {
			data[i].Write(th, i)
			c.Increment(th, 1)
		}
	}
	reader := func(th *detect.Thread) {
		for i := 0; i < n; i++ {
			c.Check(th, uint64(i)+1)
			data[i].Read(th)
		}
	}
	root.Go(writer, reader, reader)
	return reg.Violations()
}

// brokenBroadcast omits the reader's Check — the bug the checker exists
// to catch.
func brokenBroadcast() []detect.Violation {
	const n = 12
	reg := detect.NewRegistry()
	root := reg.Root()
	data := make([]*detect.Var[int], n)
	for i := range data {
		data[i] = detect.NewVar(root, fmt.Sprintf("data[%d]", i), 0)
	}
	c := detect.NewCounter(root)
	writer := func(th *detect.Thread) {
		for i := 0; i < n; i++ {
			data[i].Write(th, i)
			c.Increment(th, 1)
		}
	}
	badReader := func(th *detect.Thread) {
		for i := 0; i < n; i++ {
			data[i].Read(th) // no Check: concurrent with the writer
		}
	}
	root.Go(writer, badReader)
	return reg.Violations()
}
