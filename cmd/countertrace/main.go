// Command countertrace replays operation scripts against the reference
// counter's waiting-list structure and prints the state after each step —
// the tool that regenerates the paper's Figure 2.
//
// With no arguments it replays Figure 2 exactly. A script may be given as
// arguments: "check L" suspends a simulated thread at level L, "inc A"
// increments by A, "resume L" resumes one woken thread at level L.
//
// Usage:
//
//	countertrace
//	countertrace check 5 check 9 check 5 inc 7 resume 5 resume 5
package main

import (
	"fmt"
	"os"
	"strconv"

	"monotonic/internal/core"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{
			"check", "5", "check", "9", "check", "5",
			"inc", "7", "resume", "5", "resume", "5",
		}
		fmt.Println("(no script given: replaying the paper's Figure 2)")
	}

	s := core.NewSim()
	fmt.Printf("%-14s %s\n", "construction", s.Snapshot())
	for i := 0; i+1 < len(args); i += 2 {
		op, argStr := args[i], args[i+1]
		arg, err := strconv.ParseUint(argStr, 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "countertrace: bad operand %q\n", argStr)
			os.Exit(2)
		}
		label := op + "(" + argStr + ")"
		switch op {
		case "check":
			if !s.Check(arg) {
				label += " [passed]"
			} else {
				label += " [suspended]"
			}
		case "inc":
			s.Increment(arg)
		case "resume":
			if !s.Resume(arg) {
				label += " [nobody]"
			}
		default:
			fmt.Fprintf(os.Stderr, "countertrace: unknown op %q (want check|inc|resume)\n", op)
			os.Exit(2)
		}
		fmt.Printf("%-14s %s\n", label, s.Snapshot())
	}
	if len(args)%2 != 0 {
		fmt.Fprintln(os.Stderr, "countertrace: trailing op without operand ignored")
	}
}
