// Command counterload drives a counterd cluster with a synthetic
// synchronization load: many writer goroutines incrementing a
// population of named counters placed over the members by consistent
// hashing, and a large number of waiter sessions — each one parked wait
// at its counter's exact final value — multiplexed over the cluster's
// pooled connections. It reports the aggregate increment rate (measured
// to application at the home node, not to enqueue), the release wave,
// and how the names spread over the members.
//
// Against live servers:
//
//	counterd -addr :7667 &  counterd -addr :7668 &  counterd -addr :7669 &
//	counterload -nodes localhost:7667,localhost:7668,localhost:7669 \
//	    -sessions 10000 -increments 100000
//
// Self-hosted (loopback nodes in this process, the E26 arrangement):
//
//	counterload -local 4 -sessions 10000 -increments 100000
//
// Sessions are cheap on the wire: each is one registered wait sharing
// its pool connection's reader/flusher pair, so 10^4-10^5 sessions cost
// frames, not per-session connections — the same discipline the
// in-process engine keeps (no goroutine per wait server-side).
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"monotonic/counter/cluster"
	"monotonic/internal/server"
)

func main() {
	var (
		nodes      = flag.String("nodes", "", "comma-separated counterd addresses (empty: self-host -local nodes)")
		local      = flag.Int("local", 3, "number of loopback in-process nodes when -nodes is empty")
		pool       = flag.Int("pool", 4, "connections per node")
		names      = flag.Int("names", 256, "counter names to spread over the cluster")
		sessions   = flag.Int("sessions", 10000, "waiter sessions to park (each one wait at its counter's final value)")
		increments = flag.Int("increments", 100000, "total increments to issue")
		writers    = flag.Int("writers", 16, "concurrent writer goroutines")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "counterload: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}
	if *names < 1 || *writers < 1 || *increments < *writers || *sessions < 0 {
		fmt.Fprintln(os.Stderr, "counterload: need names >= 1, writers >= 1, increments >= writers")
		os.Exit(2)
	}

	var addrs []string
	if *nodes != "" {
		for _, a := range strings.Split(*nodes, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
	} else {
		for i := 0; i < *local; i++ {
			lis, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				fmt.Fprintf(os.Stderr, "counterload: %v\n", err)
				os.Exit(1)
			}
			s := server.New()
			go s.Serve(lis)
			defer s.Close()
			addrs = append(addrs, lis.Addr().String())
		}
		fmt.Printf("self-hosting %d loopback nodes\n", *local)
	}

	c, err := cluster.DialCluster(addrs, cluster.WithPoolSize(*pool))
	if err != nil {
		fmt.Fprintf(os.Stderr, "counterload: %v\n", err)
		os.Exit(1)
	}
	defer c.Close()

	// Placement census: how the name population spreads over the members.
	run := time.Now().UnixNano()
	name := func(i int) string { return fmt.Sprintf("load-%d-%d", run, i) }
	perNode := map[string]int{}
	ctrs := make([]*cluster.Counter, *names)
	for i := range ctrs {
		ctrs[i] = c.Counter(name(i))
		if addr, ok := c.NodeFor(name(i)); ok {
			perNode[addr]++
		}
	}
	fmt.Printf("placement over %d node(s):\n", len(addrs))
	for _, a := range addrs {
		fmt.Printf("  %-22s %d names\n", a, perNode[a])
	}

	// Final value per name under round-robin writing, so each session can
	// park at the exact level its counter will end on.
	perWriter := *increments / *writers
	total := perWriter * *writers
	finals := make([]uint64, *names)
	for w := 0; w < *writers; w++ {
		for k := 0; k < perWriter; k++ {
			finals[(w+k)%*names]++
		}
	}

	fmt.Printf("parking %d waiter sessions over %d pooled connections...\n", *sessions, len(addrs)**pool)
	var parked, released sync.WaitGroup
	for i := 0; i < *sessions; i++ {
		parked.Add(1)
		released.Add(1)
		go func(i int) {
			defer released.Done()
			ctr := ctrs[i%*names]
			level := finals[i%*names]
			parked.Done()
			ctr.Check(level)
		}(i)
	}
	parked.Wait()

	fmt.Printf("issuing %d increments from %d writers over %d names...\n", total, *writers, *names)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < perWriter; k++ {
				ctrs[(w+k)%*names].Increment(1)
			}
		}(w)
	}
	wg.Wait()
	enqueued := time.Since(start)
	for i, ctr := range ctrs {
		ctr.Check(finals[i]) // applied at the home, not merely queued
	}
	applied := time.Since(start)
	released.Wait()
	lastWake := time.Since(start)

	fmt.Printf("\n%d increments: enqueued in %v, applied in %v (%.0f increments/sec aggregate)\n",
		total, enqueued.Round(time.Millisecond), applied.Round(time.Millisecond),
		float64(total)/applied.Seconds())
	fmt.Printf("%d sessions released, last wake %v after start\n", *sessions, lastWake.Round(time.Millisecond))
	if live := c.Live(); len(live) != len(addrs) {
		fmt.Printf("WARNING: only %d of %d nodes still live: %v\n", len(live), len(addrs), live)
	}
}
