// Command stencil runs the section 5.1 heat-rod simulation with the
// traditional barrier or the ragged counter barrier, at per-cell or
// blocked granularity, and reports timing and final temperatures.
//
// Usage:
//
//	stencil -cells 256 -steps 500 -sync counter
//	stencil -cells 1024 -steps 500 -sync counter-blocked -threads 8 -skew one-slow
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"monotonic/internal/stencil"
	"monotonic/internal/workload"
)

func main() {
	var (
		cells    = flag.Int("cells", 128, "rod cells including the two fixed boundary cells")
		steps    = flag.Int("steps", 200, "time steps")
		threads  = flag.Int("threads", 4, "threads for blocked variants")
		syncMech = flag.String("sync", "counter", "seq | barrier | counter | barrier-blocked | counter-blocked")
		skewName = flag.String("skew", "", "inject load imbalance: one-slow | linear | alternating")
		show     = flag.Int("show", 8, "print this many evenly spaced cells of the result")
		verify   = flag.Bool("verify", true, "compare against the sequential oracle")
	)
	flag.Parse()

	var skew workload.Skew
	switch *skewName {
	case "":
	case "one-slow":
		skew = workload.OneSlow{Max: 8}
	case "linear":
		skew = workload.Linear{Max: 4}
	case "alternating":
		skew = workload.Alternating{Max: 4}
	default:
		fmt.Fprintf(os.Stderr, "stencil: unknown skew %q\n", *skewName)
		os.Exit(2)
	}

	init := stencil.InitialRod(*cells)
	start := time.Now()
	var got []float64
	switch *syncMech {
	case "seq":
		got = stencil.RunSequential(init, *steps, stencil.Heat)
	case "barrier":
		got = stencil.RunBarrier(init, *steps, stencil.Heat, skew)
	case "counter":
		got = stencil.RunCounter(init, *steps, stencil.Heat, skew)
	case "barrier-blocked":
		got = stencil.RunBarrierBlocked(init, *steps, *threads, stencil.Heat, skew)
	case "counter-blocked":
		got = stencil.RunCounterBlocked(init, *steps, *threads, stencil.Heat, skew)
	default:
		fmt.Fprintf(os.Stderr, "stencil: unknown sync mechanism %q\n", *syncMech)
		os.Exit(2)
	}
	elapsed := time.Since(start)

	fmt.Printf("cells=%d steps=%d sync=%s: %v\n", *cells, *steps, *syncMech, elapsed)
	if *show > 0 && len(got) > 0 {
		stride := len(got) / *show
		if stride < 1 {
			stride = 1
		}
		for i := 0; i < len(got); i += stride {
			fmt.Printf("  cell %4d: %8.3f\n", i, got[i])
		}
	}
	if *verify && *syncMech != "seq" {
		want := stencil.RunSequential(init, *steps, stencil.Heat)
		for i := range got {
			if got[i] != want[i] {
				fmt.Printf("MISMATCH at cell %d: %v != %v\n", i, got[i], want[i])
				os.Exit(1)
			}
		}
		fmt.Println("bit-identical to the sequential oracle.")
	}
}
