// Command explore exhaustively explores the interleavings of the paper's
// section 6 programs and reports the distinct outcomes and deadlocks —
// the tool behind experiment E8.
//
// Usage:
//
//	explore                       # all canonical programs
//	explore -program lock         # one program
//	explore -program ordered -n 4 # parameterized fold programs
package main

import (
	"flag"
	"fmt"
	"os"

	"monotonic/internal/explore"
)

func main() {
	var (
		program = flag.String("program", "all",
			"all | lock | counter | unguarded | split | deadlock | ordered | lockfold | broadcast | stencil | stencil-broken | apsp")
		n = flag.Int("n", 3, "thread count for ordered/lockfold/apsp")
	)
	flag.Parse()

	programs := map[string]func() explore.Program{
		"lock":           explore.LockProgram,
		"counter":        explore.CounterProgram,
		"unguarded":      explore.UnguardedProgram,
		"split":          explore.UnguardedSplitProgram,
		"deadlock":       explore.DeadlockProgram,
		"broadcast":      explore.BroadcastProgram,
		"ordered":        func() explore.Program { return explore.OrderedAccumulateProgram(*n) },
		"lockfold":       func() explore.Program { return explore.LockAccumulateProgram(*n) },
		"stencil":        func() explore.Program { return explore.StencilProgram(4, 2) },
		"stencil-broken": func() explore.Program { return explore.BrokenStencilProgram(4, 2) },
		"apsp":           func() explore.Program { return explore.APSPSkeletonProgram(*n, 3) },
	}
	order := []string{
		"lock", "counter", "unguarded", "split", "deadlock", "broadcast",
		"ordered", "lockfold", "stencil", "stencil-broken", "apsp",
	}

	report := func(name string, p explore.Program) {
		res, err := explore.Explore(p, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "explore: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d distinct outcome(s), %d states\n", name, len(res.Outcomes), res.States)
		for _, o := range res.OutcomeList() {
			fmt.Printf("  %-24s witness schedule %v\n", o, res.Witnesses[o])
		}
		if res.Deadlock {
			fmt.Printf("  DEADLOCK reachable, schedule %v\n", res.DeadlockTrace)
		}
		if vars, dl := explore.SequentialOutcome(p); dl {
			fmt.Printf("  sequential execution: deadlock\n")
		} else {
			fmt.Printf("  sequential execution: %v\n", vars)
		}
	}

	if *program == "all" {
		for _, name := range order {
			report(name, programs[name]())
		}
		return
	}
	mk, ok := programs[*program]
	if !ok {
		fmt.Fprintf(os.Stderr, "explore: unknown program %q\n", *program)
		os.Exit(2)
	}
	report(*program, mk())
}
