// Command counterbench runs the reproduction experiments (E1-E22 in
// DESIGN.md) and prints their tables, regenerating the contents of
// EXPERIMENTS.md.
//
// Usage:
//
//	counterbench                 # run every experiment at full size
//	counterbench -exp E4,E5      # run a subset
//	counterbench -quick          # reduced sizes (seconds, not minutes)
//	counterbench -list           # list experiment IDs and titles
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"monotonic/internal/experiments"
	"monotonic/internal/harness"
)

// jsonReport is the machine-readable result format written by -json. It
// is the unit of the benchmark trajectory: BENCH_<n>.json files checked
// in at the repo root and the CI bench-smoke artifact both use it, so
// runs are comparable across commits.
type jsonReport struct {
	Schema      string           `json:"schema"` // "counterbench/v1"
	Date        string           `json:"date"`   // RFC 3339
	GoVersion   string           `json:"go_version"`
	GOOS        string           `json:"goos"`
	GOARCH      string           `json:"goarch"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	NumCPU      int              `json:"num_cpu"`
	Quick       bool             `json:"quick"`
	Experiments []jsonExperiment `json:"experiments"`
}

type jsonExperiment struct {
	ID     string      `json:"id"`
	Title  string      `json:"title"`
	Tables []jsonTable `json:"tables"`
}

type jsonTable struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

func main() {
	var (
		exp     = flag.String("exp", "all", "comma-separated experiment IDs (e.g. E1,E4) or 'all'")
		quick   = flag.Bool("quick", false, "run reduced problem sizes")
		list    = flag.Bool("list", false, "list available experiments and exit")
		md      = flag.Bool("md", false, "emit a complete EXPERIMENTS.md (claims + tables + interpretation)")
		csv     = flag.String("csv", "", "also write each table as CSV into this directory")
		jsonOut = flag.String("json", "", "also write machine-readable results (tables + environment) to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := experiments.Config{Quick: *quick}
	var selected []experiments.Experiment
	if *exp == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.Get(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "counterbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}
	if *csv != "" {
		if err := os.MkdirAll(*csv, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "counterbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *md {
		printHeader(cfg)
	}
	report := jsonReport{
		Schema:     "counterbench/v1",
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Quick:      cfg.Quick,
	}
	for _, e := range selected {
		var tables []*harness.Table
		if *md {
			tables = experiments.RunAndPrintMarkdown(os.Stdout, e, cfg)
		} else {
			tables = experiments.RunAndPrint(os.Stdout, e, cfg)
		}
		if *csv != "" {
			for i, t := range tables {
				name := fmt.Sprintf("%s-%d-%s.csv", e.ID, i+1, slug(t.Title))
				path := filepath.Join(*csv, name)
				if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "counterbench: %v\n", err)
					os.Exit(1)
				}
			}
		}
		if *jsonOut != "" {
			je := jsonExperiment{ID: e.ID, Title: e.Title}
			for _, t := range tables {
				je.Tables = append(je.Tables, jsonTable{Title: t.Title, Headers: t.Headers, Rows: t.Rows})
			}
			report.Experiments = append(report.Experiments, je)
		}
	}
	if *jsonOut != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "counterbench: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "counterbench: %v\n", err)
			os.Exit(1)
		}
	}
}

// slug converts a table title into a safe file-name fragment.
func slug(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-' || r == '_':
			b.WriteByte('-')
		}
		if b.Len() >= 48 {
			break
		}
	}
	return strings.Trim(b.String(), "-")
}

// printHeader emits the EXPERIMENTS.md front matter.
func printHeader(cfg experiments.Config) {
	sizes := "full"
	if cfg.Quick {
		sizes = "quick (reduced)"
	}
	fmt.Printf(`# EXPERIMENTS — paper vs measured

Reproduction experiments for Thornley & Chandy, "Monotonic Counters: A New
Mechanism for Thread Synchronization" (IPPS 2000). The paper's evaluation
is qualitative — worked examples, synchronization patterns, determinacy
theorems, and complexity claims; it reports no machine-measured numbers —
so each experiment below reproduces the corresponding figure, listing, or
claim and checks that the *shape* holds: who wins, what scales with what,
which programs are deterministic. The experiment IDs match DESIGN.md's
index; regenerate this file with

    go run ./cmd/counterbench -md > EXPERIMENTS.md

Environment: Go %s, %s, GOMAXPROCS=%d (single-CPU host — see E4/E5 notes
and the E13 multiprocessor model). Problem sizes: %s.

`, runtime.Version(), runtime.GOARCH, runtime.GOMAXPROCS(0), sizes)
}
