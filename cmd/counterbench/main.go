// Command counterbench runs the reproduction experiments (E1-E27 in
// DESIGN.md) and prints their tables, regenerating the contents of
// EXPERIMENTS.md.
//
// Usage:
//
//	counterbench                 # run every experiment at full size
//	counterbench -exp E4,E5      # run a subset
//	counterbench -quick          # reduced sizes (seconds, not minutes)
//	counterbench -procs 1,2,4    # GOMAXPROCS sweep: run everything once per proc count
//	counterbench -cpuprofile p   # write p-p<N>.pprof per swept proc count
//	counterbench -list           # list experiment IDs and titles
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"monotonic/internal/experiments"
	"monotonic/internal/harness"
)

// jsonReport is the machine-readable result format written by -json. It
// is the unit of the benchmark trajectory: BENCH_<n>.json files checked
// in at the repo root and the CI bench-smoke artifact both use it, so
// runs are comparable across commits.
//
// counterbench/v2 makes the GOMAXPROCS sweep first-class: one report
// holds one run per proc count, each tagged with the GOMAXPROCS it ran
// under, so a report carries per-core scaling curves rather than a
// single point. cmd/benchdiff joins two reports per (benchmark, procs)
// pair and still reads the flat v1 layout of the older BENCH_*.json
// files as a single-run report.
type jsonReport struct {
	Schema    string    `json:"schema"` // "counterbench/v2"
	Date      string    `json:"date"`   // RFC 3339
	GoVersion string    `json:"go_version"`
	GOOS      string    `json:"goos"`
	GOARCH    string    `json:"goarch"`
	NumCPU    int       `json:"num_cpu"`
	Quick     bool      `json:"quick"`
	Procs     []int     `json:"procs"` // the swept GOMAXPROCS values, ascending
	Runs      []jsonRun `json:"runs"`  // one entry per procs value
}

// jsonRun is every experiment's tables from one pass of the suite at a
// fixed GOMAXPROCS.
type jsonRun struct {
	GOMAXPROCS  int              `json:"gomaxprocs"`
	Experiments []jsonExperiment `json:"experiments"`
}

type jsonExperiment struct {
	ID     string      `json:"id"`
	Title  string      `json:"title"`
	Tables []jsonTable `json:"tables"`
}

type jsonTable struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

func main() {
	var (
		exp     = flag.String("exp", "all", "comma-separated experiment IDs (e.g. E1,E4) or 'all'")
		quick   = flag.Bool("quick", false, "run reduced problem sizes")
		list    = flag.Bool("list", false, "list available experiments and exit")
		md      = flag.Bool("md", false, "emit a complete EXPERIMENTS.md (claims + tables + interpretation)")
		csv     = flag.String("csv", "", "also write each table as CSV into this directory")
		jsonOut = flag.String("json", "", "also write machine-readable results (tables + environment) to this file")
		procs   = flag.String("procs", "auto", "GOMAXPROCS values to sweep: comma-separated (e.g. 1,2,4; values above NumCPU measure oversubscribed contention), or 'auto' for 1,2,4,8 capped at NumCPU")
		cpuprof = flag.String("cpuprofile", "", "write one CPU profile per swept proc count to <name>-p<N>.pprof (next to the -json report, typically)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	procList, err := parseProcs(*procs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "counterbench: %v\n", err)
		os.Exit(2)
	}
	if *md && len(procList) > 1 {
		fmt.Fprintln(os.Stderr, "counterbench: -md writes the single-proc narrative; use -procs with one value (the sweep's curves live in the -json report and E23)")
		os.Exit(2)
	}

	cfg := experiments.Config{Quick: *quick}
	var selected []experiments.Experiment
	if *exp == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.Get(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "counterbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}
	if *csv != "" {
		if err := os.MkdirAll(*csv, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "counterbench: %v\n", err)
			os.Exit(1)
		}
	}
	report := jsonReport{
		Schema:    "counterbench/v2",
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Quick:     cfg.Quick,
		Procs:     procList,
	}

	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)
	for _, p := range procList {
		runtime.GOMAXPROCS(p)
		if *md {
			printHeader(cfg)
		} else if len(procList) > 1 {
			fmt.Printf("==== GOMAXPROCS=%d ====\n\n", p)
		}
		// One profile per proc value: a single profile spanning the sweep
		// would blur exactly the per-core differences the sweep exists to
		// expose.
		var profFile *os.File
		if *cpuprof != "" {
			name := fmt.Sprintf("%s-p%d.pprof", strings.TrimSuffix(*cpuprof, ".pprof"), p)
			f, err := os.Create(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "counterbench: %v\n", err)
				os.Exit(1)
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "counterbench: %v\n", err)
				os.Exit(1)
			}
			profFile = f
		}
		run := jsonRun{GOMAXPROCS: p}
		for _, e := range selected {
			var tables []*harness.Table
			if *md {
				tables = experiments.RunAndPrintMarkdown(os.Stdout, e, cfg)
			} else {
				tables = experiments.RunAndPrint(os.Stdout, e, cfg)
			}
			if *csv != "" {
				for i, t := range tables {
					name := fmt.Sprintf("%s-%d-%s.csv", e.ID, i+1, slug(t.Title))
					if len(procList) > 1 {
						name = fmt.Sprintf("p%d-%s", p, name)
					}
					path := filepath.Join(*csv, name)
					if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
						fmt.Fprintf(os.Stderr, "counterbench: %v\n", err)
						os.Exit(1)
					}
				}
			}
			if *jsonOut != "" {
				je := jsonExperiment{ID: e.ID, Title: e.Title}
				for _, t := range tables {
					je.Tables = append(je.Tables, jsonTable{Title: t.Title, Headers: t.Headers, Rows: t.Rows})
				}
				run.Experiments = append(run.Experiments, je)
			}
		}
		if profFile != nil {
			pprof.StopCPUProfile()
			if err := profFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "counterbench: %v\n", err)
				os.Exit(1)
			}
		}
		report.Runs = append(report.Runs, run)
	}
	runtime.GOMAXPROCS(prevProcs)

	if *jsonOut != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "counterbench: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "counterbench: %v\n", err)
			os.Exit(1)
		}
	}
}

// parseProcs resolves the -procs flag into the ascending list of
// GOMAXPROCS values to sweep. "auto" is 1,2,4,8 capped at NumCPU — on a
// single-CPU host that collapses to just 1, which is why explicit lists
// may exceed NumCPU: oversubscribing Ps on few cores forces preemption
// inside critical sections, which is the contention a scaling matrix
// exists to measure (the parallel speedup itself still needs real
// cores, and the report records NumCPU so readers can tell which
// regime a curve comes from).
func parseProcs(s string) ([]int, error) {
	if s == "auto" {
		out := []int{1}
		for _, p := range []int{2, 4, 8} {
			if p <= runtime.NumCPU() {
				out = append(out, p)
			}
		}
		return out, nil
	}
	var out []int
	seen := map[int]bool{}
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		p, err := strconv.Atoi(f)
		if err != nil || p < 1 {
			return nil, fmt.Errorf("-procs %q: want a comma-separated list of positive integers or 'auto'", s)
		}
		if seen[p] {
			return nil, fmt.Errorf("-procs %q: duplicate value %d", s, p)
		}
		seen[p] = true
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-procs %q: empty list", s)
	}
	for i := 1; i < len(out); i++ {
		if out[i] < out[i-1] {
			return nil, fmt.Errorf("-procs %q: values must be ascending", s)
		}
	}
	return out, nil
}

// slug converts a table title into a safe file-name fragment.
func slug(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-' || r == '_':
			b.WriteByte('-')
		}
		if b.Len() >= 48 {
			break
		}
	}
	return strings.Trim(b.String(), "-")
}

// printHeader emits the EXPERIMENTS.md front matter, describing the
// host this run actually used rather than assuming the original
// single-CPU recording box.
func printHeader(cfg experiments.Config) {
	sizes := "full"
	if cfg.Quick {
		sizes = "quick (reduced)"
	}
	host := fmt.Sprintf("GOMAXPROCS=%d, %d CPU(s)", runtime.GOMAXPROCS(0), runtime.NumCPU())
	if runtime.NumCPU() == 1 {
		host += " — single-CPU host: parallel variants measure contention and scheduling, not speedup (see E4/E5 notes and the E13 multiprocessor model); GOMAXPROCS>1 curves are oversubscription"
	}
	fmt.Printf(`# EXPERIMENTS — paper vs measured

Reproduction experiments for Thornley & Chandy, "Monotonic Counters: A New
Mechanism for Thread Synchronization" (IPPS 2000). The paper's evaluation
is qualitative — worked examples, synchronization patterns, determinacy
theorems, and complexity claims; it reports no machine-measured numbers —
so each experiment below reproduces the corresponding figure, listing, or
claim and checks that the *shape* holds: who wins, what scales with what,
which programs are deterministic. The experiment IDs match DESIGN.md's
index; regenerate this file with

    go run ./cmd/counterbench -md > EXPERIMENTS.md

Per-proc scaling curves are recorded separately: a GOMAXPROCS sweep
(-procs 1,2,4 -json) writes a counterbench/v2 report with one run per
proc count — BENCH_6.json onward — and cmd/benchdiff joins reports per
(benchmark, procs) pair.

Environment: Go %s, %s, %s. Problem sizes: %s.

`, runtime.Version(), runtime.GOARCH, host, sizes)
}
